//! Deterministic fault injection for the message fabric.
//!
//! [`FaultyTransport`] decorates the serialized endpoint and, driven by a
//! seeded [`FaultSchedule`], drops, duplicates, reorders, corrupts, and
//! delays flushed batches — the failure modes a process-crossing socket
//! backend (ROADMAP item 1) will actually exhibit. The reliability
//! protocol in [`crate::transport`] must mask all of them; the chaos
//! harness (`experiments chaos`) and the fault-profile property tests
//! prove that it does.
//!
//! ## Schedule grammar
//!
//! A schedule is a comma-separated list of `key:value` terms, e.g.
//! `STAPL_FAULTS=drop:0.01,dup:0.005,reorder:0.02,corrupt:0.001,delay_us:50`:
//!
//! | key        | value            | meaning                                   |
//! |------------|------------------|-------------------------------------------|
//! | `drop`     | rate in `[0, 1]` | batch vanishes                            |
//! | `dup`      | rate in `[0, 1]` | batch is delivered twice                  |
//! | `reorder`  | rate in `[0, 1]` | batch is held and released *after* the next batch to the same destination |
//! | `corrupt`  | rate in `[0, 1]` | one seeded bit of the batch is flipped    |
//! | `delay_us` | microseconds     | every data batch's send is delayed        |
//!
//! The rates are **exclusive**: a single uniform draw per batch picks at
//! most one fault, so their sum must stay `<= 1`.
//!
//! ## Determinism and liveness
//!
//! Every decision hashes `(seed, src, dest, seq)` — no RNG state, no
//! draw-order dependence — so a fixed seed and a deterministic workload
//! fault exactly the same batches on every run, which is what lets the
//! chaos bench area gate its reliability counters exactly. Two classes
//! of traffic always pass through unfaulted: **retransmissions** (the
//! recovery path must be live, and faulting it would make recovery time
//! unbounded) and **pure acks** (which carry no data and are themselves
//! recovered by retransmission of whatever they acknowledge). A batch
//! held for reordering is released by the next send to the same
//! destination — including that batch's own retransmission, so a held
//! tail batch cannot be stuck forever.
//!
//! The closure backend deliberately skips fault injection: it models the
//! in-process shared-memory fabric, which cannot lose data, and serves as
//! the fault-free reference in differential tests (see DESIGN.md "Fault
//! model & reliable delivery").

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};

use crate::location::LocId;
use crate::transport::{
    read_control, read_frame, Batch, FlushInfo, Payload, StageOutcome, Staged, Transport,
    TransportEvents, FLAG_RETRANSMIT,
};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used for
/// all fault decisions and retransmit jitter.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded schedule of injected fabric faults. Inactive (all zeros) by
/// default; parsed from the `STAPL_FAULTS` grammar (see module docs) or
/// built directly for tests and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Probability a first-transmission data batch is dropped.
    pub drop: f64,
    /// Probability it is delivered twice.
    pub dup: f64,
    /// Probability it is held and released after the next batch to the
    /// same destination.
    pub reorder: f64,
    /// Probability one bit of it is flipped.
    pub corrupt: f64,
    /// Fixed delay applied to every data-batch send, in microseconds.
    pub delay_us: u64,
}

impl FaultSchedule {
    /// True when any fault is configured (the injector is only built for
    /// active schedules).
    pub fn active(&self) -> bool {
        self.drop > 0.0
            || self.dup > 0.0
            || self.reorder > 0.0
            || self.corrupt > 0.0
            || self.delay_us > 0
    }

    /// Parses the `drop:0.01,dup:0.005,reorder:0.02,corrupt:0.001,delay_us:50`
    /// grammar. The empty string parses to the inactive schedule.
    pub fn parse(s: &str) -> Result<FaultSchedule, String> {
        let mut sched = FaultSchedule::default();
        for term in s.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let (key, value) = term
                .split_once(':')
                .ok_or_else(|| format!("fault term `{term}` is not key:value"))?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |slot: &mut f64| -> Result<(), String> {
                let v: f64 = value
                    .parse()
                    .map_err(|_| format!("fault rate `{value}` for `{key}` is not a number"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("fault rate `{value}` for `{key}` is outside [0, 1]"));
                }
                *slot = v;
                Ok(())
            };
            match key {
                "drop" => rate(&mut sched.drop)?,
                "dup" => rate(&mut sched.dup)?,
                "reorder" => rate(&mut sched.reorder)?,
                "corrupt" => rate(&mut sched.corrupt)?,
                "delay_us" => {
                    sched.delay_us = value
                        .parse()
                        .map_err(|_| format!("delay_us `{value}` is not an integer"))?;
                }
                _ => return Err(format!("unknown fault key `{key}`")),
            }
        }
        let mass = sched.drop + sched.dup + sched.reorder + sched.corrupt;
        if mass > 1.0 {
            return Err(format!(
                "fault rates sum to {mass} > 1 (the rates are exclusive draws)"
            ));
        }
        Ok(sched)
    }
}

/// The fault injector: decorates a serialized endpoint whose senders all
/// point at an internal tap channel; every flush/tick/recv pumps the tap,
/// applies the schedule, and forwards survivors into the real channels.
pub(crate) struct FaultyTransport {
    inner: Box<dyn Transport>,
    real: Vec<Sender<Batch>>,
    tap_rx: Receiver<Batch>,
    sched: FaultSchedule,
    seed: u64,
    me: LocId,
    /// At most one reorder-held batch per destination, released by the
    /// next send to that destination.
    held: RefCell<Vec<Option<Batch>>>,
    dropped_frames: Cell<u64>,
}

impl FaultyTransport {
    pub(crate) fn new(
        inner: Box<dyn Transport>,
        real: Vec<Sender<Batch>>,
        tap_rx: Receiver<Batch>,
        sched: FaultSchedule,
        seed: u64,
        me: LocId,
    ) -> Self {
        let n = real.len();
        FaultyTransport {
            inner,
            real,
            tap_rx,
            sched,
            seed,
            me,
            held: RefCell::new((0..n).map(|_| None).collect()),
            dropped_frames: Cell::new(0),
        }
    }

    /// Drains the tap and routes every outbound batch through the
    /// schedule.
    fn pump(&self) {
        while let Ok(batch) = self.tap_rx.try_recv() {
            self.route(batch);
        }
    }

    /// Forwards to the real channel; send errors mean the peer is mid-
    /// abort (the poisoned-barrier path reports that).
    fn forward(&self, batch: Batch) {
        let dest = batch.dest;
        let _ = self.real[dest].send(batch);
    }

    /// Forwards `batch` and then releases any reorder-held batch to the
    /// same destination (it now arrives out of order — the whole point).
    fn forward_then_release(&self, batch: Batch) {
        let dest = batch.dest;
        self.forward(batch);
        if let Some(old) = self.held.borrow_mut()[dest].take() {
            self.forward(old);
        }
    }

    fn route(&self, batch: Batch) {
        let Payload::Frames { bytes, nreqs } = &batch.payload else {
            // Closure batches never flow through the serialized endpoint;
            // pass anything unexpected through untouched.
            self.forward(batch);
            return;
        };
        let nreqs = *nreqs;
        // Our own endpoint encoded this batch; its control frame reads
        // cleanly. Retransmissions and pure acks (seq 0) pass through so
        // recovery stays live and deterministic.
        let ctrl = read_frame(&mut wirecodec::Reader::new(bytes))
            .ok()
            .and_then(|msg| read_control(&msg).ok())
            .unwrap_or_else(|| {
                panic!(
                    "stapl-rts: location {}: fault injector tapped a malformed outbound batch",
                    self.me
                )
            });
        if ctrl.seq == 0 || ctrl.flags & FLAG_RETRANSMIT != 0 {
            self.forward_then_release(batch);
            return;
        }
        if self.sched.delay_us > 0 {
            busy_wait(Duration::from_micros(self.sched.delay_us));
        }
        // One seeded draw per batch picks at most one fault; hashing
        // (seed, src, dest, seq) keeps the decision independent of
        // arrival order and of wall-clock time.
        let h = mix64(
            self.seed
                ^ mix64((batch.src as u64) << 32 | batch.dest as u64)
                ^ mix64(ctrl.seq),
        );
        let u = unit(h);
        let s = &self.sched;
        if u < s.drop {
            self.dropped_frames.set(self.dropped_frames.get() + nreqs as u64);
        } else if u < s.drop + s.dup {
            let copy = Batch {
                src: batch.src,
                dest: batch.dest,
                payload: Payload::Frames { bytes: bytes.clone(), nreqs },
            };
            self.forward(copy);
            self.forward_then_release(batch);
        } else if u < s.drop + s.dup + s.reorder {
            // Hold; the next send to this destination releases it after
            // itself. If something was already held, release that first
            // so at most one batch per destination is in flight here.
            let dest = batch.dest;
            let prev = self.held.borrow_mut()[dest].replace(batch);
            if let Some(prev) = prev {
                self.forward(prev);
            }
        } else if u < s.drop + s.dup + s.reorder + s.corrupt {
            let Payload::Frames { mut bytes, nreqs } = batch.payload else { unreachable!() };
            // Flip one seeded bit anywhere in the batch; the per-frame
            // checksums guarantee the receiver rejects it un-decoded.
            let bit = mix64(h) % (bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.forward_then_release(Batch {
                src: batch.src,
                dest: batch.dest,
                payload: Payload::Frames { bytes, nreqs },
            });
        } else {
            self.forward_then_release(batch);
        }
    }
}

impl Transport for FaultyTransport {
    fn serializes(&self) -> bool {
        self.inner.serializes()
    }

    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome {
        self.inner.stage(dest, msg)
    }

    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo> {
        let info = self.inner.flush(src, dest);
        self.pump();
        info
    }

    fn try_recv(&self) -> Option<Batch> {
        let batch = self.inner.try_recv();
        // The inner endpoint's acks went into the tap; route them now.
        self.pump();
        batch
    }

    fn tick(&self) {
        self.inner.tick();
        self.pump();
    }

    fn tracks_acks(&self) -> bool {
        self.inner.tracks_acks()
    }

    fn take_events(&self) -> TransportEvents {
        let mut ev = self.inner.take_events();
        ev.frames_dropped += self.dropped_frames.take();
        ev
    }
}

impl Drop for FaultyTransport {
    fn drop(&mut self) {
        // Release anything still held so an aborting run does not strand
        // batches inside the injector (peers may already be gone; ignore
        // send failures).
        for slot in self.held.get_mut() {
            if let Some(batch) = slot.take() {
                let dest = batch.dest;
                let _ = self.real[dest].send(batch);
            }
        }
    }
}

fn busy_wait(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!FaultSchedule::default().active());
        assert_eq!(FaultSchedule::parse("").unwrap(), FaultSchedule::default());
    }

    #[test]
    fn parses_the_full_grammar() {
        let s = FaultSchedule::parse("drop:0.01,dup:0.005,reorder:0.02,corrupt:0.001,delay_us:50")
            .unwrap();
        assert_eq!(
            s,
            FaultSchedule { drop: 0.01, dup: 0.005, reorder: 0.02, corrupt: 0.001, delay_us: 50 }
        );
        assert!(s.active());
        // Whitespace and partial schedules are fine.
        let s = FaultSchedule::parse(" drop : 0.5 ").unwrap();
        assert_eq!(s.drop, 0.5);
        assert_eq!(s.delay_us, 0);
    }

    #[test]
    fn rejects_malformed_schedules() {
        assert!(FaultSchedule::parse("drop").is_err());
        assert!(FaultSchedule::parse("drop:nope").is_err());
        assert!(FaultSchedule::parse("drop:1.5").is_err());
        assert!(FaultSchedule::parse("jitter:0.5").is_err());
        assert!(FaultSchedule::parse("delay_us:-3").is_err());
        // Exclusive draws: combined probability mass must stay <= 1.
        assert!(FaultSchedule::parse("drop:0.6,corrupt:0.6").is_err());
    }

    #[test]
    fn decisions_are_seed_deterministic_and_uniform() {
        let a = mix64(42);
        assert_eq!(a, mix64(42), "mixing is a pure function");
        assert_ne!(mix64(42), mix64(43));
        // unit() lands in [0, 1) and is roughly uniform.
        let mut below_half = 0;
        for i in 0..1000u64 {
            let u = unit(mix64(i));
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        assert!((350..=650).contains(&below_half), "draws badly skewed: {below_half}");
    }
}
