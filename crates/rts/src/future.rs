//! Split-phase futures (the paper's `pc_future`).
//!
//! A split-phase method returns immediately with an [`RmiFuture`]; calling
//! [`RmiFuture::get`] blocks until the response arrives, servicing incoming
//! requests while waiting. This mirrors the paper's completion guarantee:
//! the acknowledgment of a split-phase method is received no later than the
//! `get()` on its future (or the next fence).

use std::cell::Cell;

use crate::location::Location;
use crate::trace::TraceEventKind;

pub(crate) enum FutureInner<R> {
    Ready(Cell<Option<R>>),
    Slot {
        loc: Location,
        slot: u64,
        /// Which latency span `get()` records: `SyncRmiSpan` for a sync
        /// round trip (measured from `issued_ns`, the issue time), or
        /// `FutureWaitSpan` for a plain split-phase wait (measured from
        /// `get()` entry). Local fast-path futures record nothing.
        wait_kind: TraceEventKind,
        issued_ns: u64,
    },
}

/// Handle to the eventual result of a split-phase RMI.
pub struct RmiFuture<R> {
    inner: FutureInner<R>,
}

impl<R: 'static> RmiFuture<R> {
    /// A future that is already complete — the local fast path of
    /// split-phase methods (no reply slot, no polling).
    pub fn ready(r: R) -> Self {
        RmiFuture { inner: FutureInner::Ready(Cell::new(Some(r))) }
    }

    pub(crate) fn new(inner: FutureInner<R>) -> Self {
        RmiFuture { inner }
    }

    /// True when the value is already available and `get` will not block.
    pub fn is_ready(&self) -> bool {
        match &self.inner {
            FutureInner::Ready(_) => true,
            FutureInner::Slot { loc, slot, .. } => {
                // Drain anything already queued so readiness is fresh.
                loc.poll();
                loc.peek_slot(*slot)
            }
        }
    }

    /// Blocks until the value arrives, servicing incoming requests while
    /// waiting, and returns it.
    pub fn get(self) -> R {
        match self.inner {
            FutureInner::Ready(cell) => cell.take().expect("future value already taken"),
            FutureInner::Slot { loc, slot, wait_kind, issued_ns } => {
                let t0 = if wait_kind == TraceEventKind::SyncRmiSpan {
                    issued_ns
                } else {
                    loc.trace_clock()
                };
                loop {
                    if let Some(v) = loc.try_take_slot(slot) {
                        loc.trace_span_end(wait_kind, t0, 0);
                        return *v.downcast::<R>().expect("future slot type mismatch");
                    }
                    loc.poll_or_relax();
                }
            }
        }
    }
}

impl Location {
    pub(crate) fn peek_slot(&self, slot: u64) -> bool {
        // A cheap existence check without removing the value.
        self.try_peek(slot)
    }
}
