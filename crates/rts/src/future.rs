//! Split-phase futures (the paper's `pc_future`).
//!
//! A split-phase method returns immediately with an [`RmiFuture`]; calling
//! [`RmiFuture::get`] blocks until the response arrives, servicing incoming
//! requests while waiting. This mirrors the paper's completion guarantee:
//! the acknowledgment of a split-phase method is received no later than the
//! `get()` on its future (or the next fence).
//!
//! Two failure modes degrade gracefully instead of hanging or aborting the
//! whole execution (see [`RmiError`]):
//!
//! * with [`crate::RtsConfig::rmi_timeout_us`] set, a wait gives up after
//!   the deadline with a diagnostic naming the peer, the handler's type,
//!   the elapsed time, and how many retransmissions the fabric has
//!   attempted — instead of spinning forever on a dead peer;
//! * a handler that panics on the serialized path sends back a **poisoned
//!   response** that fails only the issuing future, carrying the handler
//!   name and panic message.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::location::Location;
use crate::trace::TraceEventKind;

/// Marker value a poisoned-response frame delivers into a reply slot: the
/// remote handler panicked, so the slot will never hold a real `R`.
pub(crate) struct PoisonedResponse {
    pub handler: &'static str,
    pub message: String,
}

/// Why a split-phase or sync RMI wait failed. [`RmiFuture::try_get`]
/// returns this; [`RmiFuture::get`] panics with its `Display` form.
#[derive(Debug)]
pub enum RmiError {
    /// The response did not arrive within
    /// [`crate::RtsConfig::rmi_timeout_us`].
    Timeout {
        /// Destination location of the request (`usize::MAX` when the
        /// reply slot was issued without a concrete peer).
        peer: usize,
        /// Type name of the handler the request targets.
        handler: &'static str,
        /// How long the wait spun before giving up.
        elapsed: Duration,
        /// Transport retransmissions observed by this location at expiry
        /// (a rising number means the fabric is lossy but alive; zero on
        /// a lossless fabric means the peer never replied).
        retransmits: u64,
    },
    /// The remote handler panicked; the serialized path caught it and
    /// poisoned this future instead of aborting the execution.
    HandlerPanicked {
        /// Type name of the handler that panicked.
        handler: &'static str,
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for RmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmiError::Timeout { peer, handler, elapsed, retransmits } => {
                write!(f, "RMI wait timed out after {elapsed:?} (peer ")?;
                if *peer == usize::MAX {
                    write!(f, "unknown")?;
                } else {
                    write!(f, "location {peer}")?;
                }
                write!(
                    f,
                    ", handler `{handler}`, {retransmits} retransmissions attempted — \
                     peer dead, or fabric dropping frames faster than recovery?)"
                )
            }
            RmiError::HandlerPanicked { handler, message } => {
                write!(f, "remote handler `{handler}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RmiError {}

pub(crate) enum FutureInner<R> {
    Ready(Cell<Option<R>>),
    Slot {
        loc: Location,
        slot: u64,
        /// Which latency span `get()` records: `SyncRmiSpan` for a sync
        /// round trip (measured from `issued_ns`, the issue time), or
        /// `FutureWaitSpan` for a plain split-phase wait (measured from
        /// `get()` entry). Local fast-path futures record nothing.
        wait_kind: TraceEventKind,
        issued_ns: u64,
        /// Destination location, for timeout diagnostics (`usize::MAX`
        /// for bare reply slots with no single peer).
        peer: usize,
        /// Handler type name, for timeout/poison diagnostics.
        handler: &'static str,
    },
}

/// Handle to the eventual result of a split-phase RMI.
pub struct RmiFuture<R> {
    inner: FutureInner<R>,
}

impl<R: 'static> RmiFuture<R> {
    /// A future that is already complete — the local fast path of
    /// split-phase methods (no reply slot, no polling).
    pub fn ready(r: R) -> Self {
        RmiFuture { inner: FutureInner::Ready(Cell::new(Some(r))) }
    }

    pub(crate) fn new(inner: FutureInner<R>) -> Self {
        RmiFuture { inner }
    }

    /// True when the value is already available and `get` will not block.
    pub fn is_ready(&self) -> bool {
        match &self.inner {
            FutureInner::Ready(_) => true,
            FutureInner::Slot { loc, slot, .. } => {
                // Drain anything already queued so readiness is fresh.
                loc.poll();
                loc.peek_slot(*slot)
            }
        }
    }

    /// Blocks until the value arrives, servicing incoming requests while
    /// waiting, and returns it — or fails with [`RmiError`] on timeout
    /// (when [`crate::RtsConfig::rmi_timeout_us`] is set) or when the
    /// remote handler panicked.
    pub fn try_get(self) -> Result<R, RmiError> {
        match self.inner {
            FutureInner::Ready(cell) => {
                Ok(cell.take().expect("stapl-rts: future value already taken"))
            }
            FutureInner::Slot { loc, slot, wait_kind, issued_ns, peer, handler } => {
                let t0 = if wait_kind == TraceEventKind::SyncRmiSpan {
                    issued_ns
                } else {
                    loc.trace_clock()
                };
                let timeout_us = loc.config().rmi_timeout_us;
                let deadline =
                    (timeout_us > 0).then(|| (Instant::now(), Duration::from_micros(timeout_us)));
                loop {
                    if let Some(v) = loc.try_take_slot(slot) {
                        loc.trace_span_end(wait_kind, t0, 0);
                        return match v.downcast::<R>() {
                            Ok(v) => Ok(*v),
                            Err(v) => match v.downcast::<PoisonedResponse>() {
                                Ok(p) => Err(RmiError::HandlerPanicked {
                                    handler: p.handler,
                                    message: p.message,
                                }),
                                Err(_) => panic!(
                                    "stapl-rts: location {}: future slot {slot} (handler \
                                     `{handler}`) filled with a value of the wrong type — \
                                     expected `{}`",
                                    loc.id(),
                                    std::any::type_name::<R>()
                                ),
                            },
                        };
                    }
                    if let Some((start, limit)) = deadline {
                        let elapsed = start.elapsed();
                        if elapsed >= limit {
                            return Err(RmiError::Timeout {
                                peer,
                                handler,
                                elapsed,
                                retransmits: loc.stats().retransmits,
                            });
                        }
                    }
                    loc.poll_or_relax();
                }
            }
        }
    }

    /// Blocks until the value arrives, servicing incoming requests while
    /// waiting, and returns it. Panics with the [`RmiError`] diagnostic on
    /// timeout or a poisoned response; use [`RmiFuture::try_get`] to
    /// handle those gracefully.
    pub fn get(self) -> R {
        self.try_get().unwrap_or_else(|e| panic!("stapl-rts: {e}"))
    }
}

impl Location {
    pub(crate) fn peek_slot(&self, slot: u64) -> bool {
        // A cheap existence check without removing the value.
        self.try_peek(slot)
    }
}
