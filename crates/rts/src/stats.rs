//! Runtime counters used by tests and benchmarks to observe communication
//! behavior (e.g., counting forwarding hops or aggregation effectiveness).

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct Stats {
    /// RMI requests executed on the location that issued them (fast path).
    pub local_invocations: AtomicU64,
    /// RMI requests shipped to another location.
    pub remote_requests: AtomicU64,
    /// Message batches actually pushed into channels.
    // stapl-lint: allow(counter-gate-drift) — batch boundaries depend on
    // when the poller drains the aggregation buffer, so the count is
    // timing-dependent and ungateable (see the transport-area note).
    pub batches_sent: AtomicU64,
    /// Synchronous / split-phase responses sent back.
    pub responses_sent: AtomicU64,
    /// Number of `rmi_fence` rounds executed (termination-detection loops).
    // stapl-lint: allow(counter-gate-drift) — fence rounds repeat until
    // traffic quiesces; how many loops that takes is scheduler timing.
    pub fence_rounds: AtomicU64,
    /// PARAGRAPH tasks executed (on any location, home or thief).
    pub tasks_executed: AtomicU64,
    /// PARAGRAPH tasks that ran on a location other than their home
    /// because an idle location stole them.
    // stapl-lint: allow(counter-gate-drift) — which tasks get stolen
    // depends on thread timing; only `tasks_executed` is deterministic
    // (see EXECUTOR_GATED in the bench harness).
    pub tasks_stolen: AtomicU64,
    /// Steal probes issued by idle executors (successful or not).
    // stapl-lint: allow(counter-gate-drift) — probe traffic tracks idle
    // time, i.e. scheduler timing; never gateable.
    pub steal_requests: AtomicU64,
    /// Directory-routed requests sent straight to a cached owner (the
    /// optimistic one-hop path that skips the home location).
    pub dir_cache_hits: AtomicU64,
    /// Directory-routed requests that had no usable cache entry and paid
    /// the home-location hop (counted only when caching is enabled).
    pub dir_cache_misses: AtomicU64,
    /// Cached-owner guesses that turned out stale: the element had moved,
    /// and the request self-healed by re-forwarding through its home.
    pub dir_cache_stale: AtomicU64,
    /// Aggregation buffers force-flushed because their oldest request
    /// exceeded `flush_age_us` (the adaptive-flush path).
    // stapl-lint: allow(counter-gate-drift) — fires on a wall-clock age
    // threshold, so the count is timing by definition.
    pub aged_flushes: AtomicU64,
    /// Bulk-range RMIs issued: one per (owner, contiguous run) shipped as a
    /// single message by `get_range`/`set_range`/`apply_range`.
    pub bulk_requests: AtomicU64,
    /// Chunks served by a direct local slice borrow (one `RefCell` borrow
    /// for the whole chunk) — the view-localization fast path.
    pub localized_chunks: AtomicU64,
    /// Elements processed one-at-a-time where a chunk/bulk path was asked
    /// for but unavailable (non-contiguous storage, runs below
    /// `bulk_threshold`, or a view without a localized override).
    pub element_fallbacks: AtomicU64,
    /// Segment RMIs issued by the dynamic-container bulk transport: one
    /// per (owner, base-container segment) shipped as a single message by
    /// `get_segment`/`append_segment`/`set_segment`/`apply_segment` and
    /// the grouped MapReduce merge.
    pub segment_requests: AtomicU64,
    /// Items shipped as payload by the data-collecting operations
    /// (`collect_ordered` gathers, opt-in broadcasts): the simulated
    /// bytes-on-the-wire proxy the O(N·P) → O(N) assertions measure.
    pub gather_items: AtomicU64,
    /// Bytes of request/response wire frames produced by the serialized
    /// transport (frame header + shallow closure representation). Zero
    /// under the closure backend. Batch framing overhead (the per-flush
    /// control frame) is *excluded*: flush counts are timing-dependent and
    /// this counter must stay deterministic so it can be gated.
    pub bytes_sent: AtomicU64,
    /// RMI requests/responses encoded into wire frames by the serialized
    /// transport (equals `remote_requests` there; zero under closures).
    pub messages_serialized: AtomicU64,
    /// Nanoseconds spent encoding wire frames (serialized transport only).
    /// Pure timing — never gate it.
    // stapl-lint: allow(counter-gate-drift) — see above: a nanosecond
    // total can never be regression-gated on counts.
    pub serialize_ns: AtomicU64,
    /// Wire frames discarded by the fabric or the receiver: fault-injected
    /// drops, corrupt-batch rejections, and duplicate-batch discards
    /// (counted in frames; zero on a fault-free fabric).
    pub frames_dropped: AtomicU64,
    /// Batches re-sent by the reliable-delivery retransmit timer.
    pub retransmits: AtomicU64,
    /// Inbound batches rejected by wire validation (per-frame CRC-32 or
    /// framing) before any frame was decoded.
    pub checksum_failures: AtomicU64,
    /// Standalone pure-ack batches sent by the reliable-delivery protocol.
    pub acks_sent: AtomicU64,
    /// Handler panics caught on the serialized path and converted into
    /// poisoned responses (failing only the issuing future) or, for
    /// fire-and-forget requests, contained to the delivering location.
    pub poisoned_responses: AtomicU64,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            local_invocations: self.local_invocations.load(Ordering::Relaxed),
            remote_requests: self.remote_requests.load(Ordering::Relaxed),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            fence_rounds: self.fence_rounds.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steal_requests: self.steal_requests.load(Ordering::Relaxed),
            dir_cache_hits: self.dir_cache_hits.load(Ordering::Relaxed),
            dir_cache_misses: self.dir_cache_misses.load(Ordering::Relaxed),
            dir_cache_stale: self.dir_cache_stale.load(Ordering::Relaxed),
            aged_flushes: self.aged_flushes.load(Ordering::Relaxed),
            bulk_requests: self.bulk_requests.load(Ordering::Relaxed),
            localized_chunks: self.localized_chunks.load(Ordering::Relaxed),
            element_fallbacks: self.element_fallbacks.load(Ordering::Relaxed),
            segment_requests: self.segment_requests.load(Ordering::Relaxed),
            gather_items: self.gather_items.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_serialized: self.messages_serialized.load(Ordering::Relaxed),
            serialize_ns: self.serialize_ns.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            poisoned_responses: self.poisoned_responses.load(Ordering::Relaxed),
        }
    }
}

/// Expands `$m!(field, field, ...)` with every counter field of
/// [`StatsSnapshot`], in declaration order. Single source of truth for the
/// name-indexed access, the JSON serialization, and `since`: adding a
/// counter here (and to both structs) extends all of them at once.
macro_rules! with_counter_fields {
    // Braced expansion so `$m` may expand to items (e.g. `LocalStats`) as
    // well as expressions.
    ($m:ident) => {
        $m! {
            local_invocations,
            remote_requests,
            batches_sent,
            responses_sent,
            fence_rounds,
            tasks_executed,
            tasks_stolen,
            steal_requests,
            dir_cache_hits,
            dir_cache_misses,
            dir_cache_stale,
            aged_flushes,
            bulk_requests,
            localized_chunks,
            element_fallbacks,
            segment_requests,
            gather_items,
            bytes_sent,
            messages_serialized,
            serialize_ns,
            frames_dropped,
            retransmits,
            checksum_failures,
            acks_sent,
            poisoned_responses
        }
    };
}

/// Per-location twins of [`Stats`]: plain `Cell`s bumped only by the owning
/// thread, so the per-location attribution costs no atomic traffic beyond
/// what the global counters already pay. Every increment site updates both
/// (see the `bump!` macro in `location.rs`), which makes the invariant
/// "per-location snapshots sum to the global snapshot" hold by
/// construction — and testable.
macro_rules! def_local_stats {
    ($($f:ident),*) => {
        #[derive(Default)]
        pub(crate) struct LocalStats {
            $(pub $f: std::cell::Cell<u64>,)*
        }

        impl LocalStats {
            pub(crate) fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot { $($f: self.$f.get()),* }
            }
        }
    };
}
with_counter_fields!(def_local_stats);

impl StatsSnapshot {
    /// Adds every counter of `other` into `self` (saturating). Used to
    /// check that per-location snapshots sum to the global aggregate.
    pub fn add(&self, other: &StatsSnapshot) -> StatsSnapshot {
        macro_rules! add {
            ($($f:ident),*) => {
                StatsSnapshot { $($f: self.$f.saturating_add(other.$f)),* }
            };
        }
        with_counter_fields!(add)
    }
}

/// A point-in-time copy of the global runtime counters (aggregated over all
/// locations of one execution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub local_invocations: u64,
    pub remote_requests: u64,
    pub batches_sent: u64,
    pub responses_sent: u64,
    pub fence_rounds: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub steal_requests: u64,
    pub dir_cache_hits: u64,
    pub dir_cache_misses: u64,
    pub dir_cache_stale: u64,
    pub aged_flushes: u64,
    pub bulk_requests: u64,
    pub localized_chunks: u64,
    pub element_fallbacks: u64,
    pub segment_requests: u64,
    pub gather_items: u64,
    pub bytes_sent: u64,
    pub messages_serialized: u64,
    pub serialize_ns: u64,
    pub frames_dropped: u64,
    pub retransmits: u64,
    pub checksum_failures: u64,
    pub acks_sent: u64,
    pub poisoned_responses: u64,
}

impl StatsSnapshot {
    /// Every counter name, in declaration order (the order `to_json` emits
    /// and the benchmark JSON schema uses).
    pub fn counter_names() -> &'static [&'static str] {
        macro_rules! names {
            ($($f:ident),*) => { &[$(stringify!($f)),*] };
        }
        with_counter_fields!(names)
    }

    /// Looks a counter up by name; `None` for unknown names.
    pub fn counter(&self, name: &str) -> Option<u64> {
        macro_rules! get {
            ($($f:ident),*) => {
                match name { $(stringify!($f) => Some(self.$f),)* _ => None }
            };
        }
        with_counter_fields!(get)
    }

    /// All `(name, value)` pairs, in declaration order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        macro_rules! pairs {
            ($($f:ident),*) => { vec![$((stringify!($f), self.$f)),*] };
        }
        with_counter_fields!(pairs)
    }

    /// The per-counter delta against an `earlier` snapshot of the same
    /// execution (saturating, so a reordered pair degrades to zero instead
    /// of wrapping). This is how benchmark scenarios scope counters: take a
    /// snapshot after setup, run the kernel, and subtract — back-to-back
    /// scenarios in one process then cannot cross-contaminate records.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        macro_rules! sub {
            ($($f:ident),*) => {
                StatsSnapshot { $($f: self.$f.saturating_sub(earlier.$f)),* }
            };
        }
        with_counter_fields!(sub)
    }

    /// Serializes the counters as a single-line JSON object,
    /// `{"local_invocations":N,...}`, in declaration order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, v)) in self.counters().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(name);
            s.push_str("\":");
            s.push_str(&v.to_string());
        }
        s.push('}');
        s
    }

    /// Parses a JSON object of `"name": integer` pairs as produced by
    /// [`StatsSnapshot::to_json`]. Unknown keys are ignored (schema
    /// forward-compatibility); missing keys stay zero. Returns `None` on
    /// malformed input (no braces, an unterminated string, or a
    /// non-integer value).
    pub fn from_json(json: &str) -> Option<StatsSnapshot> {
        let body = json.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut snap = StatsSnapshot::default();
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value: u64 = value.trim().parse().ok()?;
            macro_rules! set {
                ($($f:ident),*) => {
                    match key { $(stringify!($f) => snap.$f = value,)* _ => {} }
                };
            }
            with_counter_fields!(set);
        }
        Some(snap)
    }
}

impl StatsSnapshot {
    /// Requests per batch actually achieved; measures aggregation
    /// effectiveness.
    pub fn aggregation_ratio(&self) -> f64 {
        if self.batches_sent == 0 {
            0.0
        } else {
            self.remote_requests as f64 / self.batches_sent as f64
        }
    }

    /// Fraction of executed PARAGRAPH tasks that were stolen (migrated to
    /// an idle location); measures how much the work-stealing path fires.
    pub fn steal_fraction(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.tasks_stolen as f64 / self.tasks_executed as f64
        }
    }

    /// Fraction of directory-routed requests served by the owner cache
    /// (one-hop instead of home-forwarding). Stale guesses still count as
    /// hits here; subtract `dir_cache_stale` for the useful-hit rate.
    pub fn dir_cache_hit_rate(&self) -> f64 {
        // Sum in f64: saturated counters must not overflow the total.
        let total = self.dir_cache_hits as f64 + self.dir_cache_misses as f64;
        if total == 0.0 {
            0.0
        } else {
            self.dir_cache_hits as f64 / total
        }
    }

    /// Fraction of chunk-layer work served by direct slice borrows rather
    /// than element fallbacks. Units are chunks vs elements, so this is a
    /// coarse health signal: 1.0 means every chunk localized, values near
    /// 0.0 mean the element-wise fallback dominated.
    pub fn localization_rate(&self) -> f64 {
        let total = self.localized_chunks as f64 + self.element_fallbacks as f64;
        if total == 0.0 {
            0.0
        } else {
            self.localized_chunks as f64 / total
        }
    }

    /// Mean wire-frame size of the serialized transport, in bytes per
    /// encoded message; `0.0` under the closure backend (nothing is
    /// serialized there).
    pub fn bytes_per_message(&self) -> f64 {
        if self.messages_serialized == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.messages_serialized as f64
        }
    }

    /// Fraction of element-wise invocations that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_invocations as f64 + self.remote_requests as f64;
        if total == 0.0 {
            0.0
        } else {
            self.remote_requests as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.aggregation_ratio(), 0.0);
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.steal_fraction(), 0.0);
        assert_eq!(s.dir_cache_hit_rate(), 0.0);
        assert_eq!(s.localization_rate(), 0.0);
        assert_eq!(s.bytes_per_message(), 0.0);
    }

    #[test]
    fn bytes_per_message_computes() {
        let s = StatsSnapshot { bytes_sent: 120, messages_serialized: 4, ..Default::default() };
        assert!((s.bytes_per_message() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn localization_rate_computes() {
        let s = StatsSnapshot {
            localized_chunks: 9,
            element_fallbacks: 3,
            ..Default::default()
        };
        assert!((s.localization_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dir_cache_hit_rate_computes() {
        let s = StatsSnapshot { dir_cache_hits: 30, dir_cache_misses: 10, ..Default::default() };
        assert!((s.dir_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn steal_fraction_computes() {
        let s = StatsSnapshot { tasks_executed: 8, tasks_stolen: 2, ..Default::default() };
        assert!((s.steal_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_compute() {
        let s = StatsSnapshot {
            local_invocations: 50,
            remote_requests: 150,
            batches_sent: 15,
            ..Default::default()
        };
        assert!((s.aggregation_ratio() - 10.0).abs() < 1e-12);
        assert!((s.remote_fraction() - 0.75).abs() < 1e-12);
    }

    /// Every counter at its max: the derived ratios must stay finite,
    /// non-negative, and (for the fraction-shaped ones) within [0, 1] —
    /// no overflow panic, NaN, or infinity anywhere.
    #[test]
    fn ratios_survive_saturated_counters() {
        for name in StatsSnapshot::counter_names() {
            // Set each field by name through from_json; each single-field
            // saturation must leave every ratio well-defined.
            let patched =
                StatsSnapshot::from_json(&format!("{{\"{name}\":{}}}", u64::MAX)).unwrap();
            assert_eq!(patched.counter(name), Some(u64::MAX));
            for r in [
                patched.aggregation_ratio(),
                patched.steal_fraction(),
                patched.dir_cache_hit_rate(),
                patched.localization_rate(),
                patched.remote_fraction(),
                patched.bytes_per_message(),
            ] {
                assert!(r.is_finite() && r >= 0.0, "{name} saturated: bad ratio {r}");
            }
        }
        let all_max = StatsSnapshot::from_json(
            &StatsSnapshot::default().to_json().replace(":0", &format!(":{}", u64::MAX)),
        )
        .unwrap();
        assert_eq!(all_max.remote_requests, u64::MAX);
        for r in [
            all_max.aggregation_ratio(),
            all_max.steal_fraction(),
            all_max.dir_cache_hit_rate(),
            all_max.localization_rate(),
            all_max.remote_fraction(),
            all_max.bytes_per_message(),
        ] {
            assert!(r.is_finite(), "ratio must be finite, got {r}");
            assert!(r >= 0.0, "ratio must be non-negative, got {r}");
        }
        // `hits + misses` sums past u64::MAX in f64 space without wrapping,
        // so the fractions stay in [0, 1].
        assert!(all_max.steal_fraction() <= 1.0 + 1e-9);
        assert!(all_max.dir_cache_hit_rate() <= 1.0);
        assert!(all_max.localization_rate() <= 1.0);
        assert!(all_max.remote_fraction() <= 1.0);
    }

    /// One-sided saturation: numerator maxed while the denominator is tiny.
    #[test]
    fn ratios_with_lopsided_saturation() {
        let s = StatsSnapshot { remote_requests: u64::MAX, batches_sent: 1, ..Default::default() };
        assert!(s.aggregation_ratio().is_finite());
        assert!((s.aggregation_ratio() - u64::MAX as f64).abs() < 1e30);
        let s = StatsSnapshot { tasks_stolen: u64::MAX, tasks_executed: 1, ..Default::default() };
        assert!(s.steal_fraction().is_finite()); // >1 is fine; it must not be NaN/inf
    }

    #[test]
    fn counter_names_match_fields() {
        let names = StatsSnapshot::counter_names();
        assert_eq!(names.len(), 25);
        assert_eq!(names[0], "local_invocations");
        assert_eq!(names[16], "gather_items");
        assert_eq!(names[17], "bytes_sent");
        assert_eq!(names[19], "serialize_ns");
        assert_eq!(names[20], "frames_dropped");
        assert_eq!(names[24], "poisoned_responses");
        let s = StatsSnapshot { gather_items: 9, ..Default::default() };
        assert_eq!(s.counter("gather_items"), Some(9));
        assert_eq!(s.counter("no_such_counter"), None);
        assert_eq!(s.counters().len(), names.len());
    }

    #[test]
    fn json_round_trips_distinct_values() {
        // Give every field a distinct value so a swapped pair cannot pass.
        let mut json = String::from("{");
        for (i, name) in StatsSnapshot::counter_names().iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("\"{name}\":{}", (i as u64 + 1) * 3));
        }
        json.push('}');
        let snap = StatsSnapshot::from_json(&json).unwrap();
        for (i, (_, v)) in snap.counters().into_iter().enumerate() {
            assert_eq!(v, (i as u64 + 1) * 3);
        }
        assert_eq!(StatsSnapshot::from_json(&snap.to_json()), Some(snap));
    }

    #[test]
    fn json_round_trips_extremes() {
        let snap = StatsSnapshot {
            remote_requests: u64::MAX,
            gather_items: u64::MAX - 1,
            ..Default::default()
        };
        assert_eq!(StatsSnapshot::from_json(&snap.to_json()), Some(snap));
        // Whitespace tolerance and unknown-key forward compatibility.
        let s = StatsSnapshot::from_json(
            "{ \"remote_requests\" : 7 , \"a_future_counter\": 1 }",
        )
        .unwrap();
        assert_eq!(s.remote_requests, 7);
        assert_eq!(s.local_invocations, 0);
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "remote_requests:1",
            "{\"remote_requests\":}",
            "{\"remote_requests\":-1}",
            "{\"remote_requests\":1.5}",
            "{\"remote_requests\" 1}",
            "{unquoted:1}",
        ] {
            assert_eq!(StatsSnapshot::from_json(bad), None, "should reject {bad:?}");
        }
        // Empty object is valid: all counters zero.
        assert_eq!(StatsSnapshot::from_json("{}"), Some(StatsSnapshot::default()));
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let before = StatsSnapshot { remote_requests: 10, batches_sent: 4, ..Default::default() };
        let after = StatsSnapshot { remote_requests: 25, batches_sent: 3, ..Default::default() };
        let d = after.since(&before);
        assert_eq!(d.remote_requests, 15);
        assert_eq!(d.batches_sent, 0, "must saturate, not wrap");
        assert_eq!(d.local_invocations, 0);
        assert_eq!(after.since(&StatsSnapshot::default()), after);
    }
}
