//! Runtime counters used by tests and benchmarks to observe communication
//! behavior (e.g., counting forwarding hops or aggregation effectiveness).

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct Stats {
    /// RMI requests executed on the location that issued them (fast path).
    pub local_invocations: AtomicU64,
    /// RMI requests shipped to another location.
    pub remote_requests: AtomicU64,
    /// Message batches actually pushed into channels.
    pub batches_sent: AtomicU64,
    /// Synchronous / split-phase responses sent back.
    pub responses_sent: AtomicU64,
    /// Number of `rmi_fence` rounds executed (termination-detection loops).
    pub fence_rounds: AtomicU64,
    /// PARAGRAPH tasks executed (on any location, home or thief).
    pub tasks_executed: AtomicU64,
    /// PARAGRAPH tasks that ran on a location other than their home
    /// because an idle location stole them.
    pub tasks_stolen: AtomicU64,
    /// Steal probes issued by idle executors (successful or not).
    pub steal_requests: AtomicU64,
    /// Directory-routed requests sent straight to a cached owner (the
    /// optimistic one-hop path that skips the home location).
    pub dir_cache_hits: AtomicU64,
    /// Directory-routed requests that had no usable cache entry and paid
    /// the home-location hop (counted only when caching is enabled).
    pub dir_cache_misses: AtomicU64,
    /// Cached-owner guesses that turned out stale: the element had moved,
    /// and the request self-healed by re-forwarding through its home.
    pub dir_cache_stale: AtomicU64,
    /// Aggregation buffers force-flushed because their oldest request
    /// exceeded `flush_age_us` (the adaptive-flush path).
    pub aged_flushes: AtomicU64,
    /// Bulk-range RMIs issued: one per (owner, contiguous run) shipped as a
    /// single message by `get_range`/`set_range`/`apply_range`.
    pub bulk_requests: AtomicU64,
    /// Chunks served by a direct local slice borrow (one `RefCell` borrow
    /// for the whole chunk) — the view-localization fast path.
    pub localized_chunks: AtomicU64,
    /// Elements processed one-at-a-time where a chunk/bulk path was asked
    /// for but unavailable (non-contiguous storage, runs below
    /// `bulk_threshold`, or a view without a localized override).
    pub element_fallbacks: AtomicU64,
    /// Segment RMIs issued by the dynamic-container bulk transport: one
    /// per (owner, base-container segment) shipped as a single message by
    /// `get_segment`/`append_segment`/`set_segment`/`apply_segment` and
    /// the grouped MapReduce merge.
    pub segment_requests: AtomicU64,
    /// Items shipped as payload by the data-collecting operations
    /// (`collect_ordered` gathers, opt-in broadcasts): the simulated
    /// bytes-on-the-wire proxy the O(N·P) → O(N) assertions measure.
    pub gather_items: AtomicU64,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            local_invocations: self.local_invocations.load(Ordering::Relaxed),
            remote_requests: self.remote_requests.load(Ordering::Relaxed),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            fence_rounds: self.fence_rounds.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steal_requests: self.steal_requests.load(Ordering::Relaxed),
            dir_cache_hits: self.dir_cache_hits.load(Ordering::Relaxed),
            dir_cache_misses: self.dir_cache_misses.load(Ordering::Relaxed),
            dir_cache_stale: self.dir_cache_stale.load(Ordering::Relaxed),
            aged_flushes: self.aged_flushes.load(Ordering::Relaxed),
            bulk_requests: self.bulk_requests.load(Ordering::Relaxed),
            localized_chunks: self.localized_chunks.load(Ordering::Relaxed),
            element_fallbacks: self.element_fallbacks.load(Ordering::Relaxed),
            segment_requests: self.segment_requests.load(Ordering::Relaxed),
            gather_items: self.gather_items.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the global runtime counters (aggregated over all
/// locations of one execution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub local_invocations: u64,
    pub remote_requests: u64,
    pub batches_sent: u64,
    pub responses_sent: u64,
    pub fence_rounds: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub steal_requests: u64,
    pub dir_cache_hits: u64,
    pub dir_cache_misses: u64,
    pub dir_cache_stale: u64,
    pub aged_flushes: u64,
    pub bulk_requests: u64,
    pub localized_chunks: u64,
    pub element_fallbacks: u64,
    pub segment_requests: u64,
    pub gather_items: u64,
}

impl StatsSnapshot {
    /// Requests per batch actually achieved; measures aggregation
    /// effectiveness.
    pub fn aggregation_ratio(&self) -> f64 {
        if self.batches_sent == 0 {
            0.0
        } else {
            self.remote_requests as f64 / self.batches_sent as f64
        }
    }

    /// Fraction of executed PARAGRAPH tasks that were stolen (migrated to
    /// an idle location); measures how much the work-stealing path fires.
    pub fn steal_fraction(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.tasks_stolen as f64 / self.tasks_executed as f64
        }
    }

    /// Fraction of directory-routed requests served by the owner cache
    /// (one-hop instead of home-forwarding). Stale guesses still count as
    /// hits here; subtract `dir_cache_stale` for the useful-hit rate.
    pub fn dir_cache_hit_rate(&self) -> f64 {
        let total = self.dir_cache_hits + self.dir_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.dir_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of chunk-layer work served by direct slice borrows rather
    /// than element fallbacks. Units are chunks vs elements, so this is a
    /// coarse health signal: 1.0 means every chunk localized, values near
    /// 0.0 mean the element-wise fallback dominated.
    pub fn localization_rate(&self) -> f64 {
        let total = self.localized_chunks + self.element_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.localized_chunks as f64 / total as f64
        }
    }

    /// Fraction of element-wise invocations that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_invocations + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.remote_requests as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.aggregation_ratio(), 0.0);
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.steal_fraction(), 0.0);
        assert_eq!(s.dir_cache_hit_rate(), 0.0);
        assert_eq!(s.localization_rate(), 0.0);
    }

    #[test]
    fn localization_rate_computes() {
        let s = StatsSnapshot {
            localized_chunks: 9,
            element_fallbacks: 3,
            ..Default::default()
        };
        assert!((s.localization_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dir_cache_hit_rate_computes() {
        let s = StatsSnapshot { dir_cache_hits: 30, dir_cache_misses: 10, ..Default::default() };
        assert!((s.dir_cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn steal_fraction_computes() {
        let s = StatsSnapshot { tasks_executed: 8, tasks_stolen: 2, ..Default::default() };
        assert!((s.steal_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_compute() {
        let s = StatsSnapshot {
            local_invocations: 50,
            remote_requests: 150,
            batches_sent: 15,
            ..Default::default()
        };
        assert!((s.aggregation_ratio() - 10.0).abs() < 1e-12);
        assert!((s.remote_fraction() - 0.75).abs() < 1e-12);
    }
}
