//! Runtime counters used by tests and benchmarks to observe communication
//! behavior (e.g., counting forwarding hops or aggregation effectiveness).

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct Stats {
    /// RMI requests executed on the location that issued them (fast path).
    pub local_invocations: AtomicU64,
    /// RMI requests shipped to another location.
    pub remote_requests: AtomicU64,
    /// Message batches actually pushed into channels.
    pub batches_sent: AtomicU64,
    /// Synchronous / split-phase responses sent back.
    pub responses_sent: AtomicU64,
    /// Number of `rmi_fence` rounds executed (termination-detection loops).
    pub fence_rounds: AtomicU64,
    /// PARAGRAPH tasks executed (on any location, home or thief).
    pub tasks_executed: AtomicU64,
    /// PARAGRAPH tasks that ran on a location other than their home
    /// because an idle location stole them.
    pub tasks_stolen: AtomicU64,
    /// Steal probes issued by idle executors (successful or not).
    pub steal_requests: AtomicU64,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            local_invocations: self.local_invocations.load(Ordering::Relaxed),
            remote_requests: self.remote_requests.load(Ordering::Relaxed),
            batches_sent: self.batches_sent.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            fence_rounds: self.fence_rounds.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steal_requests: self.steal_requests.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the global runtime counters (aggregated over all
/// locations of one execution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub local_invocations: u64,
    pub remote_requests: u64,
    pub batches_sent: u64,
    pub responses_sent: u64,
    pub fence_rounds: u64,
    pub tasks_executed: u64,
    pub tasks_stolen: u64,
    pub steal_requests: u64,
}

impl StatsSnapshot {
    /// Requests per batch actually achieved; measures aggregation
    /// effectiveness.
    pub fn aggregation_ratio(&self) -> f64 {
        if self.batches_sent == 0 {
            0.0
        } else {
            self.remote_requests as f64 / self.batches_sent as f64
        }
    }

    /// Fraction of executed PARAGRAPH tasks that were stolen (migrated to
    /// an idle location); measures how much the work-stealing path fires.
    pub fn steal_fraction(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.tasks_stolen as f64 / self.tasks_executed as f64
        }
    }

    /// Fraction of element-wise invocations that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_invocations + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.remote_requests as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero() {
        let s = StatsSnapshot::default();
        assert_eq!(s.aggregation_ratio(), 0.0);
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.steal_fraction(), 0.0);
    }

    #[test]
    fn steal_fraction_computes() {
        let s = StatsSnapshot { tasks_executed: 8, tasks_stolen: 2, ..Default::default() };
        assert!((s.steal_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_compute() {
        let s = StatsSnapshot {
            local_invocations: 50,
            remote_requests: 150,
            batches_sent: 15,
            ..Default::default()
        };
        assert!((s.aggregation_ratio() - 10.0).abs() < 1e-12);
        assert!((s.remote_fraction() - 0.75).abs() < 1e-12);
    }
}
