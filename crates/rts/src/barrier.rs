//! A polling barrier: locations waiting at the barrier keep servicing
//! incoming RMI requests, so a location can never be blocked at a barrier
//! while a peer waits on a synchronous reply from it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub(crate) struct PollBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    /// Set when any location panics so waiters abort instead of hanging.
    pub(crate) poisoned: AtomicBool,
}

impl PollBarrier {
    pub(crate) fn new(total: usize) -> Self {
        PollBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Waits for all locations, invoking `service` repeatedly while waiting.
    /// `service` is expected to poll the incoming request queue.
    pub(crate) fn wait(&self, mut service: impl FnMut()) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver releases the others.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if self.poisoned.load(Ordering::Relaxed) {
                    panic!("stapl-rts: a peer location panicked while this location waited at a barrier");
                }
                service();
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn all_threads_pass_each_generation_together() {
        let n = 4;
        let barrier = Arc::new(PollBarrier::new(n));
        let phase = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..n {
                let barrier = barrier.clone();
                let phase = phase.clone();
                s.spawn(move || {
                    for round in 0..50u64 {
                        // Everyone must observe the shared phase of the
                        // current round, never a future one.
                        assert_eq!(phase.load(Ordering::SeqCst) / n as u64, round);
                        phase.fetch_add(1, Ordering::SeqCst);
                        barrier.wait(|| {});
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 50 * n as u64);
    }

    #[test]
    fn service_closure_runs_while_waiting() {
        let barrier = Arc::new(PollBarrier::new(2));
        let serviced = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let b = barrier.clone();
            let sv = serviced.clone();
            s.spawn(move || {
                b.wait(|| {
                    sv.fetch_add(1, Ordering::Relaxed);
                });
            });
            // Give the first thread time to spin in the barrier.
            std::thread::sleep(std::time::Duration::from_millis(20));
            barrier.wait(|| {});
        });
        assert!(serviced.load(Ordering::Relaxed) > 0);
    }

    #[test]
    #[should_panic(expected = "peer location panicked")]
    fn poisoned_barrier_panics_waiters() {
        let barrier = PollBarrier::new(2);
        barrier.poisoned.store(true, Ordering::Relaxed);
        barrier.wait(|| {});
    }
}
