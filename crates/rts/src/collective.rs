//! Collective operations: broadcast, reductions, scans, all-gather.
//!
//! The paper's ARMI provides collective operations "with the same semantics
//! as the traditional MPI collective operations". Because all locations of
//! the simulated machine live in one process, the collectives exchange
//! values through a shared scoreboard guarded by the polling barrier; this
//! is a control-plane shortcut (the paper's RTS similarly implements
//! collectives below the RMI layer) and does not let p_object data bypass
//! the message-passing discipline.

use std::any::Any;
use std::sync::Mutex;

use crate::location::Location;
use crate::trace::TraceEventKind;

pub(crate) struct CollectiveBoard {
    slots: Vec<Mutex<Option<Box<dyn Any + Send>>>>,
    result: Mutex<Option<Box<dyn Any + Send>>>,
}

impl CollectiveBoard {
    pub(crate) fn new(nlocs: usize) -> Self {
        CollectiveBoard {
            slots: (0..nlocs).map(|_| Mutex::new(None)).collect(),
            result: Mutex::new(None),
        }
    }
}

impl Location {
    /// All-reduce: every location contributes `val`; every location receives
    /// the reduction of all contributions under `op` (applied in location
    /// order, so non-commutative `op` still gives a deterministic result).
    ///
    /// **Collective**: must be called by all locations.
    pub fn allreduce<T, F>(&self, val: T, op: F) -> T
    where
        T: Send + Clone + 'static,
        F: Fn(T, T) -> T,
    {
        let t0 = self.trace_clock();
        let board = &self.shared().board;
        *board.slots[self.id()].lock().unwrap() = Some(Box::new(val));
        self.barrier();
        if self.id() == 0 {
            let mut acc: Option<T> = None;
            for (who, slot) in board.slots.iter().enumerate() {
                let v = slot
                    .lock()
                    .unwrap()
                    .take()
                    .unwrap_or_else(|| {
                        panic!(
                            "stapl-rts: collective over `{}`: location {who} contributed \
                             nothing — a location skipped the collective call, or two \
                             collectives raced (collectives must be called by all \
                             locations at the same program point)",
                            std::any::type_name::<T>()
                        )
                    })
                    .downcast::<T>()
                    .unwrap_or_else(|_| {
                        panic!(
                            "stapl-rts: collective type mismatch: location {who} \
                             contributed a value that is not `{}` — locations disagree \
                             on which collective they are executing",
                            std::any::type_name::<T>()
                        )
                    });
                acc = Some(match acc {
                    None => *v,
                    Some(a) => op(a, *v),
                });
            }
            *board.result.lock().unwrap() = Some(Box::new(acc.unwrap()));
        }
        self.barrier();
        let out = {
            let guard = board.result.lock().unwrap();
            guard
                .as_ref()
                .unwrap_or_else(|| {
                    panic!(
                        "stapl-rts: collective result of type `{}` missing on location {} \
                         — the reducing location (0) never published it",
                        std::any::type_name::<T>(),
                        self.id()
                    )
                })
                .downcast_ref::<T>()
                .unwrap_or_else(|| {
                    panic!(
                        "stapl-rts: collective result is not `{}` on location {} — \
                         overlapping collectives of different types",
                        std::any::type_name::<T>(),
                        self.id()
                    )
                })
                .clone()
        };
        // Everyone has read the result; location 0 may clear it and the
        // board can be reused by the next collective.
        self.barrier();
        if self.id() == 0 {
            *board.result.lock().unwrap() = None;
        }
        self.barrier();
        // Every collective funnels through allreduce, so this one span
        // kind covers broadcast / allgather / scans too.
        self.trace_span_end(TraceEventKind::CollectiveSpan, t0, 0);
        out
    }

    /// Broadcast `val` from `root` to every location. Non-root contributions
    /// are ignored.
    ///
    /// **Collective**.
    pub fn broadcast<T>(&self, root: super::LocId, val: T) -> T
    where
        T: Send + Clone + 'static,
    {
        let rooted = (self.id() == root).then_some(val);
        self.allreduce(rooted, |a, b| a.or(b)).unwrap_or_else(|| {
            panic!(
                "stapl-rts: broadcast of `{}` from root {root}, but the execution has only \
                 {} locations (roots are 0..nlocs)",
                std::any::type_name::<T>(),
                self.nlocs()
            )
        })
    }

    /// Gathers every location's contribution into a vector indexed by
    /// location id, visible on all locations.
    ///
    /// **Collective**.
    pub fn allgather<T>(&self, val: T) -> Vec<T>
    where
        T: Send + Clone + 'static,
    {
        self.allreduce(vec![val], |mut a, mut b| {
            a.append(&mut b);
            a
        })
    }

    /// Exclusive prefix scan over location ids: location `i` receives
    /// `op(val_0, ..., val_{i-1})`, and location 0 receives `identity`.
    /// Also returns the global total as the second tuple element.
    ///
    /// **Collective**. Used for, e.g., computing global index offsets.
    pub fn exclusive_scan<T, F>(&self, val: T, identity: T, op: F) -> (T, T)
    where
        T: Send + Clone + 'static,
        F: Fn(T, T) -> T,
    {
        let all = self.allgather(val);
        let mut acc = identity.clone();
        let mut mine = identity;
        for (i, v) in all.into_iter().enumerate() {
            if i == self.id() {
                mine = acc.clone();
            }
            acc = op(acc, v);
        }
        (mine, acc)
    }

    /// Global sum of `u64` contributions — the most common collective in
    /// the containers (sizes, counters).
    pub fn allreduce_sum(&self, val: u64) -> u64 {
        self.allreduce(val, |a, b| a + b)
    }

    /// Global max — used by the benchmark kernel (Fig. 24 reports the max
    /// time over all locations).
    pub fn allreduce_max_f64(&self, val: f64) -> f64 {
        self.allreduce(val, f64::max)
    }
}
