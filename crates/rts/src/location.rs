//! Locations, the p_object registry, and the RMI primitives.
//!
//! A [`Location`] is the paper's abstraction of "a component of a parallel
//! machine that has a contiguous address space and associated execution
//! capabilities". Each location runs on its own OS thread; the `Location`
//! handle is `!Send` and cheap to clone (it is an `Rc` around the
//! per-thread state).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{Receiver, Sender};

use crate::barrier::PollBarrier;
use crate::collective::CollectiveBoard;
use crate::config::RtsConfig;
use crate::future::{FutureInner, PoisonedResponse, RmiFuture};
use crate::stats::{LocalStats, Stats, StatsSnapshot};
use crate::trace::{LocationTrace, TraceBuf, TraceEventKind};
use crate::transport::{
    decode_batch, encode_frame, make_endpoint, Batch, Payload, StageOutcome, Staged, Transport,
    WireKind,
};

/// Identifier of a location (0-based, dense).
pub type LocId = usize;

/// Handle of a registered p_object; identical on every location because
/// registration is a collective operation performed in the same order by
/// all locations (SPMD).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle(pub(crate) u32);

/// A request shipped between locations: executed on the destination thread
/// with access to the destination's `Location`.
pub(crate) type Request = Box<dyn FnOnce(&Location) + Send>;

/// Address of a pending reply slot on the requesting location; see
/// [`Location::make_reply_slot`].
pub struct ReplyToken<R> {
    src: LocId,
    slot: u64,
    _marker: std::marker::PhantomData<fn() -> R>,
}

impl<R> Clone for ReplyToken<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R> Copy for ReplyToken<R> {}

/// State shared by all locations of one SPMD execution. Only control-plane
/// data lives here (channel endpoints, counters, barriers); p_object data
/// never does.
pub(crate) struct Shared {
    pub nlocs: usize,
    pub cfg: RtsConfig,
    /// The full sender side of the fabric; each location's transport
    /// endpoint clones these at construction.
    pub senders: Vec<Sender<Batch>>,
    /// Requests enqueued for a remote location (incremented *before* the
    /// request becomes visible, even while still in an aggregation buffer).
    pub sent: AtomicU64,
    /// Requests fully executed at their destination.
    pub handled: AtomicU64,
    /// Requests whose carrying batch has been *acknowledged* back to its
    /// sender (reliable transports only; stays 0 on transports that do not
    /// track acks). The fence additionally requires `acked == sent` on an
    /// ack-tracking fabric, so it cannot complete while a dropped batch is
    /// still awaiting retransmission.
    pub acked: AtomicU64,
    pub barrier: PollBarrier,
    pub fence_done: AtomicU64, // 0 = undecided/no, 1 = done (leader-written)
    pub board: CollectiveBoard,
    pub stats: Stats,
    /// Epoch of this execution: all trace timestamps are monotonic
    /// nanoseconds relative to this instant, so the per-location timelines
    /// of one run share a clock.
    pub epoch: std::time::Instant,
    /// Where each location deposits its [`LocationTrace`] after the final
    /// fence (only under `cfg.trace`); drained by `execute_collect_traced`.
    pub trace_sink: Mutex<Vec<Option<LocationTrace>>>,
}

/// One registry slot: the representative (until unregistered) plus the
/// registered Rust type name, kept after unregistration so that a late RMI
/// panics with the name of the p_object that died instead of only a number.
struct RegEntry {
    rep: Option<Rc<dyn Any>>,
    type_name: &'static str,
}

struct LocInner {
    id: LocId,
    shared: Arc<Shared>,
    /// This location's endpoint of the message fabric (staging buffers,
    /// flush, inbound queue); see [`crate::transport`].
    transport: Box<dyn Transport>,
    /// Cached `transport.serializes()` so the send hot path branches on a
    /// bool instead of a virtual call.
    serializes: bool,
    /// Cached `transport.tracks_acks()`: whether the endpoint runs the
    /// reliable-delivery protocol (and therefore produces transport events
    /// to reap and ack progress for the fence to observe).
    tracks_acks: bool,
    /// Wire-kind hint for the *next* staged request (consumed on enqueue);
    /// set by `note_bulk_request` / `note_segment_request` immediately
    /// before the container issues the tagged RMI. Serialized backend only.
    wire_hint: Cell<Option<WireKind>>,
    /// Reusable frame-encoding buffer (serialized backend only).
    scratch: RefCell<Vec<u8>>,
    registry: RefCell<Vec<RegEntry>>,
    /// When the oldest request staged toward `dest` entered the transport's
    /// buffer; `None` for an empty buffer. Drives the adaptive (age-based)
    /// flush.
    outbuf_since: RefCell<Vec<Option<std::time::Instant>>>,
    slots: RefCell<HashMap<u64, Box<dyn Any>>>,
    next_slot: Cell<u64>,
    /// This location's private counter twins (see [`LocalStats`]).
    local_stats: LocalStats,
    /// The trace ring buffer; `None` unless `RtsConfig::trace` is set, so
    /// the disabled hot path pays exactly one branch.
    trace: Option<RefCell<TraceBuf>>,
}

/// Bumps a counter in both the global atomic [`Stats`] and this location's
/// [`LocalStats`] twin. All increments happen on the owning thread, so the
/// per-location snapshots sum to the global snapshot by construction.
macro_rules! bump {
    ($loc:expr, $field:ident) => {
        bump!($loc, $field, 1)
    };
    ($loc:expr, $field:ident, $n:expr) => {{
        let n: u64 = $n;
        $loc.inner.shared.stats.$field.fetch_add(n, Ordering::Relaxed);
        let c = &$loc.inner.local_stats.$field;
        c.set(c.get() + n);
    }};
}

/// A per-thread handle to the runtime. Cloning is cheap; the clone refers
/// to the same location.
#[derive(Clone)]
pub struct Location {
    inner: Rc<LocInner>,
}

impl Location {
    pub(crate) fn new(id: LocId, shared: Arc<Shared>, rx: Receiver<Batch>) -> Self {
        let nlocs = shared.nlocs;
        let trace = shared.cfg.trace.then(|| RefCell::new(TraceBuf::new(shared.cfg.trace_capacity)));
        let transport = make_endpoint(&shared.cfg, id, shared.senders.clone(), rx, nlocs);
        let serializes = transport.serializes();
        let tracks_acks = transport.tracks_acks();
        Location {
            inner: Rc::new(LocInner {
                id,
                shared,
                transport,
                serializes,
                tracks_acks,
                wire_hint: Cell::new(None),
                scratch: RefCell::new(Vec::new()),
                registry: RefCell::new(Vec::new()),
                outbuf_since: RefCell::new(vec![None; nlocs]),
                slots: RefCell::new(HashMap::new()),
                next_slot: Cell::new(0),
                local_stats: LocalStats::default(),
                trace,
            }),
        }
    }

    /// This location's identifier.
    pub fn id(&self) -> LocId {
        self.inner.id
    }

    /// Number of locations in the execution.
    pub fn nlocs(&self) -> usize {
        self.inner.shared.nlocs
    }

    /// The runtime configuration of this execution.
    pub fn config(&self) -> &RtsConfig {
        &self.inner.shared.cfg
    }

    /// Snapshot of the global communication counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.shared.stats.snapshot()
    }

    /// Snapshot of the counters attributable to *this* location only: the
    /// work its thread performed (requests it enqueued, responses it sent,
    /// tasks it executed, ...). Summing `local_stats()` over all locations
    /// of an execution equals [`Location::stats`].
    pub fn local_stats(&self) -> StatsSnapshot {
        self.inner.local_stats.snapshot()
    }

    // ------------------------------------------------------------------
    // Tracing (see `crate::trace`; all of these are no-ops — one branch —
    // unless `RtsConfig::trace` is set)
    // ------------------------------------------------------------------

    /// Whether the trace layer is recording on this location.
    pub fn trace_enabled(&self) -> bool {
        self.inner.trace.is_some()
    }

    /// Monotonic nanoseconds since the execution epoch; `0` when tracing
    /// is off (callers use it only to open spans, so the value is then
    /// never observed).
    pub fn trace_clock(&self) -> u64 {
        if self.inner.trace.is_some() {
            self.inner.shared.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Records an instant event of `kind` with a kind-specific argument.
    pub fn trace_instant(&self, kind: TraceEventKind, arg: u64) {
        if let Some(t) = &self.inner.trace {
            let now = self.inner.shared.epoch.elapsed().as_nanos() as u64;
            t.borrow_mut().instant(kind, now, arg);
        }
    }

    /// Closes a span of `kind` opened at `start_ns` (a [`Location::trace_clock`]
    /// reading) and feeds its duration into the kind's latency histogram.
    pub fn trace_span_end(&self, kind: TraceEventKind, start_ns: u64, arg: u64) {
        if let Some(t) = &self.inner.trace {
            let now = self.inner.shared.epoch.elapsed().as_nanos() as u64;
            t.borrow_mut().span(kind, start_ns, now, arg);
        }
    }

    /// Drains this location's trace buffer (events, counts, histograms,
    /// plus a [`Location::local_stats`] snapshot); `None` when tracing is
    /// off. Called by the SPMD driver after the final fence.
    pub(crate) fn take_trace(&self) -> Option<LocationTrace> {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.borrow_mut().take_data(self.id(), self.local_stats()))
    }

    // ------------------------------------------------------------------
    // Executor instrumentation (used by `stapl-paragraph`)
    // ------------------------------------------------------------------

    /// Records one executed PARAGRAPH task in the global counters.
    pub fn note_task_executed(&self) {
        bump!(self, tasks_executed);
    }

    /// Records one PARAGRAPH task that ran away from its home location.
    pub fn note_task_stolen(&self) {
        bump!(self, tasks_stolen);
    }

    /// Records one steal probe issued by an idle executor.
    pub fn note_steal_request(&self) {
        bump!(self, steal_requests);
        self.trace_instant(TraceEventKind::StealProbe, 0);
    }

    // ------------------------------------------------------------------
    // Directory-cache instrumentation (used by `stapl-core`'s directory)
    // ------------------------------------------------------------------

    /// Records one directory-routed request sent straight to a cached owner.
    pub fn note_dir_cache_hit(&self) {
        bump!(self, dir_cache_hits);
        self.trace_instant(TraceEventKind::DirCacheHit, 0);
    }

    /// Records one directory-routed request that paid the home-location hop.
    pub fn note_dir_cache_miss(&self) {
        bump!(self, dir_cache_misses);
        self.trace_instant(TraceEventKind::DirCacheMiss, 0);
    }

    /// Records one stale cached-owner guess that re-forwarded through home.
    pub fn note_dir_cache_stale(&self) {
        bump!(self, dir_cache_stale);
        self.trace_instant(TraceEventKind::DirCacheStale, 0);
    }

    /// Records one element / base-container migration leaving this
    /// location (`dest` is where the payload is headed — advisory, for the
    /// trace timeline).
    pub fn note_migration(&self, dest: u64) {
        self.trace_instant(TraceEventKind::Migration, dest);
    }

    // ------------------------------------------------------------------
    // Localization / bulk-transport instrumentation (used by containers
    // and views for the chunk-at-a-time fast paths)
    // ------------------------------------------------------------------

    /// Records one bulk-range RMI: a whole (owner, contiguous run) of
    /// `items` elements shipped as a single message (`0` when the count is
    /// not known at issue time, e.g. a fetch).
    pub fn note_bulk_request(&self, items: u64) {
        bump!(self, bulk_requests);
        self.trace_instant(TraceEventKind::BulkTransfer, items);
        if self.inner.serializes {
            self.inner.wire_hint.set(Some(WireKind::Bulk));
        }
    }

    /// Records one chunk served by a direct local slice borrow.
    pub fn note_localized_chunk(&self) {
        bump!(self, localized_chunks);
    }

    /// Records `n` elements that fell back to element-at-a-time processing
    /// where a chunk/bulk path was requested.
    pub fn note_element_fallbacks(&self, n: u64) {
        bump!(self, element_fallbacks, n);
    }

    /// Records one segment RMI: a whole (owner, base-container segment) of
    /// `items` elements shipped as a single message by the
    /// dynamic-container bulk transport (`0` when the count is not known at
    /// issue time).
    pub fn note_segment_request(&self, items: u64) {
        bump!(self, segment_requests);
        self.trace_instant(TraceEventKind::SegmentTransfer, items);
        if self.inner.serializes {
            self.inner.wire_hint.set(Some(WireKind::Segment));
        }
    }

    /// Records `n` items shipped as payload by a data-collecting gather or
    /// broadcast — the bytes-on-the-wire proxy of the simulated machine.
    pub fn note_gather_items(&self, n: u64) {
        bump!(self, gather_items, n);
        self.trace_instant(TraceEventKind::GatherItems, n);
    }

    // ------------------------------------------------------------------
    // p_object registry
    // ------------------------------------------------------------------

    /// Registers a p_object representative on this location and returns its
    /// handle plus a local `Rc` to the representative.
    ///
    /// **Collective**: every location must register its representative of
    /// the same object at the same point in the SPMD program, so handles
    /// agree across locations (the paper's `p_object` registration).
    pub fn register<T: 'static>(&self, rep: T) -> (Handle, Rc<T>) {
        let rc = Rc::new(rep);
        let mut reg = self.inner.registry.borrow_mut();
        let h = Handle(reg.len() as u32);
        reg.push(RegEntry {
            rep: Some(rc.clone() as Rc<dyn Any>),
            type_name: std::any::type_name::<T>(),
        });
        (h, rc)
    }

    /// Removes a representative from the registry. Subsequent RMIs to this
    /// handle on this location panic, naming the unregistered p_object.
    pub fn unregister(&self, h: Handle) {
        let mut reg = self.inner.registry.borrow_mut();
        if let Some(slot) = reg.get_mut(h.0 as usize) {
            slot.rep = None;
        }
    }

    /// Looks up the local representative registered under `h`.
    ///
    /// # Panics
    /// Panics if the handle is unregistered or the type does not match; the
    /// message names the registered p_object type so the failing RMI can be
    /// traced to a container, not just a numeric handle.
    pub fn lookup<T: 'static>(&self, h: Handle) -> Rc<T> {
        let reg = self.inner.registry.borrow();
        let entry = reg.get(h.0 as usize).unwrap_or_else(|| {
            panic!(
                "stapl-rts: RMI to handle {:?} on location {}, but only {} p_objects were ever \
                 registered here (registration is collective — did a location skip a constructor?)",
                h,
                self.id(),
                reg.len()
            )
        });
        let rc = entry
            .rep
            .as_ref()
            .unwrap_or_else(|| {
                panic!(
                    "stapl-rts: RMI delivered to handle {:?} on location {} after its p_object \
                     `{}` was unregistered (the object was destroyed while requests to it were \
                     still in flight — fence before dropping p_objects)",
                    h,
                    self.id(),
                    entry.type_name
                )
            })
            .clone();
        let registered = entry.type_name;
        drop(reg);
        rc.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "stapl-rts: handle {:?} is registered as `{}` but the RMI expected `{}`",
                h,
                registered,
                std::any::type_name::<T>()
            )
        })
    }

    // ------------------------------------------------------------------
    // RMI primitives
    // ------------------------------------------------------------------

    /// Asynchronous RMI (the paper's `async_rmi`): runs `f` against the
    /// representative of `h` on location `dest` and returns immediately.
    ///
    /// Guarantees: requests from this location to a fixed destination are
    /// executed in invocation order; completion is guaranteed only after a
    /// subsequent [`Location::rmi_fence`].
    pub fn async_rmi<T, F>(&self, dest: LocId, h: Handle, f: F)
    where
        T: 'static,
        F: FnOnce(&T, &Location) + Send + 'static,
    {
        if dest == self.id() {
            bump!(self, local_invocations);
            let obj = self.lookup::<T>(h);
            f(&obj, self);
            return;
        }
        self.enqueue_typed(dest, WireKind::Async, move |loc: &Location| {
            let obj = loc.lookup::<T>(h);
            f(&obj, loc);
        });
    }

    /// Synchronous RMI (the paper's `sync_rmi`): runs `f` on `dest` and
    /// blocks until the result arrives, servicing incoming requests while
    /// waiting.
    pub fn sync_rmi<T, R, F>(&self, dest: LocId, h: Handle, f: F) -> R
    where
        T: 'static,
        R: Send + 'static,
        F: FnOnce(&T, &Location) -> R + Send + 'static,
    {
        // Tag the future as a sync round trip so its wait span covers
        // issue → value arrival, not just the time spent inside `get`.
        self.split_rmi_tagged(dest, h, f, TraceEventKind::SyncRmiSpan).get()
    }

    /// Split-phase RMI (the paper's two-phase methods, Charm++/X10 style):
    /// returns a future immediately; `RmiFuture::get` blocks until the value
    /// arrives.
    pub fn split_rmi<T, R, F>(&self, dest: LocId, h: Handle, f: F) -> RmiFuture<R>
    where
        T: 'static,
        R: Send + 'static,
        F: FnOnce(&T, &Location) -> R + Send + 'static,
    {
        self.split_rmi_tagged(dest, h, f, TraceEventKind::FutureWaitSpan)
    }

    fn split_rmi_tagged<T, R, F>(
        &self,
        dest: LocId,
        h: Handle,
        f: F,
        wait_kind: TraceEventKind,
    ) -> RmiFuture<R>
    where
        T: 'static,
        R: Send + 'static,
        F: FnOnce(&T, &Location) -> R + Send + 'static,
    {
        if dest == self.id() {
            bump!(self, local_invocations);
            let obj = self.lookup::<T>(h);
            let r = f(&obj, self);
            return RmiFuture::ready(r);
        }
        let slot = self.alloc_slot();
        let src = self.id();
        let issued_ns = self.trace_clock();
        let handler = std::any::type_name::<F>();
        self.enqueue_typed(dest, WireKind::Sync, move |loc: &Location| {
            // On the serialized path a panicking handler must not strand
            // the requester: catch it (the lookup too — an unregistered
            // handle is just as fatal to the reply) and poison the issuing
            // future instead of unwinding the whole execution.
            if loc.inner.serializes {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let obj = loc.lookup::<T>(h);
                    f(&obj, loc)
                }));
                match caught {
                    Ok(r) => loc.send_response(src, slot, r),
                    Err(p) => loc.send_poison(src, slot, handler, panic_message(&*p)),
                }
            } else {
                let obj = loc.lookup::<T>(h);
                let r = f(&obj, loc);
                loc.send_response(src, slot, r);
            }
        });
        // Bound response latency: the request (and everything ordered
        // before it) leaves the aggregation buffer now.
        self.flush(dest);
        RmiFuture::new(FutureInner::Slot {
            loc: self.clone(),
            slot,
            wait_kind,
            issued_ns,
            peer: dest,
            handler,
        })
    }

    /// Ships `req` to `dest` for execution there, preserving per-pair FIFO
    /// order. Used by higher layers (e.g. method forwarding) that need raw
    /// request routing without a registry lookup baked in.
    pub fn send_request(&self, dest: LocId, req: Box<dyn FnOnce(&Location) + Send>) {
        if dest == self.id() {
            req(self);
            return;
        }
        self.enqueue_boxed(dest, req);
    }

    fn alloc_slot(&self) -> u64 {
        let s = self.inner.next_slot.get();
        self.inner.next_slot.set(s + 1);
        s
    }

    /// Creates a (reply token, future) pair for request/response protocols
    /// that are *not* a single round trip — e.g. a request forwarded through
    /// a directory's home location before reaching the owner, who replies
    /// directly to the original requester (the paper's method forwarding
    /// with synchronous semantics).
    ///
    /// Ship the token inside the request; whoever ends up executing it calls
    /// [`Location::reply`]. The requester blocks on the future.
    pub fn make_reply_slot<R: Send + 'static>(&self) -> (ReplyToken<R>, RmiFuture<R>) {
        let slot = self.alloc_slot();
        let token = ReplyToken { src: self.id(), slot, _marker: std::marker::PhantomData };
        let fut = RmiFuture::new(FutureInner::Slot {
            loc: self.clone(),
            slot,
            wait_kind: TraceEventKind::FutureWaitSpan,
            issued_ns: self.trace_clock(),
            // A bare reply slot has no single peer: anyone holding the
            // token may answer, so the timeout diagnostic says "unknown".
            peer: usize::MAX,
            handler: "<reply token>",
        });
        (token, fut)
    }

    /// Sends `r` back to the location that created `token`, completing its
    /// future. May be called from any location.
    pub fn reply<R: Send + 'static>(&self, token: ReplyToken<R>, r: R) {
        self.send_response(token.src, token.slot, r);
    }

    fn send_response<R: Send + 'static>(&self, dest: LocId, slot: u64, r: R) {
        if dest == self.id() {
            self.fill_slot(slot, Box::new(r));
            return;
        }
        // Count every remote response here — sync round trips, split-phase
        // replies, and forwarded `reply()` completions alike — so the
        // per-location twin of `responses_sent` is bumped on the thread
        // that sends the response and `local_stats()` sums to the global
        // counter no matter which path produced the reply.
        bump!(self, responses_sent);
        self.trace_instant(TraceEventKind::RmiReply, dest as u64);
        self.enqueue_with_kind(dest, WireKind::Response, move |loc: &Location| {
            loc.fill_slot(slot, Box::new(r));
        });
        // Responses bypass aggregation: someone is spinning on this value.
        self.flush(dest);
    }

    /// Completes the future waiting on `(dest, slot)` with a
    /// [`PoisonedResponse`] instead of a value: the handler panicked, and
    /// only the issuing future should fail. Serialized backend only.
    fn send_poison(&self, dest: LocId, slot: u64, handler: &'static str, message: String) {
        bump!(self, poisoned_responses);
        self.trace_instant(TraceEventKind::PoisonedResponse, dest as u64);
        if dest == self.id() {
            self.fill_slot(slot, Box::new(PoisonedResponse { handler, message }));
            return;
        }
        // A poison is still a response on the wire: count it as one so the
        // responses_sent twin stays the send-side mirror of reply traffic.
        bump!(self, responses_sent);
        self.enqueue_with_kind(dest, WireKind::Response, move |loc: &Location| {
            loc.fill_slot(slot, Box::new(PoisonedResponse { handler, message }));
        });
        self.flush(dest);
    }

    pub(crate) fn fill_slot(&self, slot: u64, val: Box<dyn Any>) {
        self.inner.slots.borrow_mut().insert(slot, val);
    }

    pub(crate) fn try_take_slot(&self, slot: u64) -> Option<Box<dyn Any>> {
        self.inner.slots.borrow_mut().remove(&slot)
    }

    pub(crate) fn try_peek(&self, slot: u64) -> bool {
        self.inner.slots.borrow().contains_key(&slot)
    }

    // ------------------------------------------------------------------
    // Message plumbing
    // ------------------------------------------------------------------

    /// Routes a request whose concrete closure type is still known: the
    /// closure backend boxes it, the serialized backend encodes it as a
    /// wire frame (consuming any pending wire-kind hint).
    fn enqueue_typed<F>(&self, dest: LocId, default_kind: WireKind, f: F)
    where
        F: FnOnce(&Location) + Send + 'static,
    {
        let kind = if self.inner.serializes {
            self.inner.wire_hint.take().unwrap_or(default_kind)
        } else {
            default_kind
        };
        self.enqueue_with_kind(dest, kind, f);
    }

    /// Routes an already-boxed request (raw [`Location::send_request`]
    /// traffic). The closure backend ships the box as-is — no double
    /// boxing; the serialized backend relocates the box itself into a
    /// frame (its pointee still travels by pointer, like every capture).
    fn enqueue_boxed(&self, dest: LocId, req: Request) {
        if self.inner.serializes {
            let kind = self.inner.wire_hint.take().unwrap_or(WireKind::Async);
            self.stage_frame(dest, kind, req);
        } else {
            self.stage_closure(dest, req);
        }
    }

    fn enqueue_with_kind<F>(&self, dest: LocId, kind: WireKind, f: F)
    where
        F: FnOnce(&Location) + Send + 'static,
    {
        if self.inner.serializes {
            self.stage_frame(dest, kind, f);
        } else {
            self.stage_closure(dest, Box::new(f));
        }
    }

    /// Closure-backend staging: the pre-transport `enqueue` body, verbatim.
    fn stage_closure(&self, dest: LocId, req: Request) {
        debug_assert_ne!(dest, self.id());
        let shared = &self.inner.shared;
        // Count at enqueue time (not flush time) so the fence's quiescence
        // check observes buffered-but-unflushed requests.
        shared.sent.fetch_add(1, Ordering::SeqCst);
        bump!(self, remote_requests);
        self.trace_instant(TraceEventKind::RmiSend, dest as u64);
        let outcome = self.inner.transport.stage(dest, Staged::Closure(req));
        self.after_stage(dest, outcome);
    }

    /// Serialized-backend staging: encode `f` into a wire frame (timed,
    /// counted), then stage the frame bytes.
    fn stage_frame<F>(&self, dest: LocId, kind: WireKind, f: F)
    where
        F: FnOnce(&Location) + Send + 'static,
    {
        debug_assert_ne!(dest, self.id());
        let t0 = std::time::Instant::now();
        let mut scratch = self.inner.scratch.borrow_mut();
        scratch.clear();
        let nbytes = encode_frame(&mut scratch, kind, f);
        let elapsed = t0.elapsed().as_nanos() as u64;
        bump!(self, messages_serialized);
        bump!(self, bytes_sent, nbytes as u64);
        bump!(self, serialize_ns, elapsed);
        self.trace_instant(TraceEventKind::Serialize, nbytes as u64);
        let shared = &self.inner.shared;
        shared.sent.fetch_add(1, Ordering::SeqCst);
        bump!(self, remote_requests);
        self.trace_instant(TraceEventKind::RmiSend, dest as u64);
        let outcome = self.inner.transport.stage(dest, Staged::Frame(&scratch));
        drop(scratch);
        self.after_stage(dest, outcome);
    }

    /// Shared post-staging bookkeeping: buffer-age tracking for the
    /// adaptive flush, and the aggregation-threshold flush.
    fn after_stage(&self, dest: LocId, outcome: StageOutcome) {
        // Timestamps are only needed by the adaptive flush; keep the
        // clock read off the send path under the default eager policy.
        if outcome.first_in_buffer && self.config().flush_age_us != 0 {
            self.inner.outbuf_since.borrow_mut()[dest] = Some(std::time::Instant::now());
        }
        if outcome.flush_now {
            self.flush(dest);
        }
    }

    /// Flushes the aggregation buffer toward `dest`.
    pub fn flush(&self, dest: LocId) {
        let Some(info) = self.inner.transport.flush(self.id(), dest) else {
            return;
        };
        self.inner.outbuf_since.borrow_mut()[dest] = None;
        bump!(self, batches_sent);
        self.trace_instant(TraceEventKind::Flush, info.nreqs as u64);
        if info.bytes != 0 {
            self.trace_instant(TraceEventKind::WireFlush, info.bytes as u64);
        }
        if self.inner.tracks_acks {
            self.reap_transport_events();
        }
    }

    /// Flushes all aggregation buffers.
    pub fn flush_all(&self) {
        for dest in 0..self.nlocs() {
            if dest != self.id() {
                self.flush(dest);
            }
        }
    }

    /// Flushes only the aggregation buffers whose oldest request has been
    /// waiting at least `max_age` — the adaptive-flush primitive: young
    /// buffers keep aggregating, aged ones are pushed out so a cold
    /// destination cannot stall a request indefinitely.
    ///
    /// Buffer ages are only recorded when `RtsConfig::flush_age_us` is
    /// non-zero (the default eager policy skips the clock read on the send
    /// path), so this is a no-op under `flush_age_us == 0`.
    pub fn flush_aged(&self, max_age: std::time::Duration) {
        let now = std::time::Instant::now();
        for dest in 0..self.nlocs() {
            if dest == self.id() {
                continue;
            }
            let aged = matches!(
                self.inner.outbuf_since.borrow()[dest],
                Some(since) if now.duration_since(since) >= max_age
            );
            if aged {
                bump!(self, aged_flushes);
                self.trace_instant(TraceEventKind::AgedFlush, dest as u64);
                self.flush(dest);
            }
        }
    }

    /// The flush policy applied when this location goes idle: eager
    /// (`flush_age_us == 0`, every buffer) or adaptive (only buffers older
    /// than the configured age).
    pub(crate) fn flush_idle(&self) {
        let age = self.config().flush_age();
        if age.is_zero() {
            self.flush_all();
        } else {
            self.flush_aged(age);
        }
    }

    /// Services all currently queued incoming batches; returns the number
    /// of requests executed.
    pub fn poll(&self) -> usize {
        let mut n = 0;
        if self.inner.tracks_acks {
            // Drive retransmission of overdue unacknowledged batches; on a
            // lossless fabric this is an early-out on a counter.
            self.inner.transport.tick();
        }
        while let Some(batch) = self.inner.transport.try_recv() {
            n += self.deliver(batch);
        }
        if self.inner.tracks_acks {
            self.reap_transport_events();
        }
        n
    }

    /// Moves the transport's accumulated reliability events (drops,
    /// retransmits, checksum rejections, acks) into the global counters,
    /// the trace timeline, and the fence's `acked` progress counter.
    fn reap_transport_events(&self) {
        let ev = self.inner.transport.take_events();
        if ev.frames_dropped != 0 {
            bump!(self, frames_dropped, ev.frames_dropped);
            self.trace_instant(TraceEventKind::FaultDrop, ev.frames_dropped);
        }
        if ev.retransmits != 0 {
            bump!(self, retransmits, ev.retransmits);
            self.trace_instant(TraceEventKind::Retransmit, ev.retransmits);
        }
        if ev.checksum_failures != 0 {
            bump!(self, checksum_failures, ev.checksum_failures);
            self.trace_instant(TraceEventKind::ChecksumFail, ev.checksum_failures);
        }
        if ev.acks_sent != 0 {
            bump!(self, acks_sent, ev.acks_sent);
            self.trace_instant(TraceEventKind::AckSent, ev.acks_sent);
        }
        if ev.frames_acked != 0 {
            self.inner.shared.acked.fetch_add(ev.frames_acked, Ordering::SeqCst);
        }
    }

    fn deliver(&self, batch: Batch) -> usize {
        let shared = &self.inner.shared;
        let cfg = &shared.cfg;
        let n = batch.len();
        if cfg.cross_node(batch.src, self.id()) {
            let total =
                cfg.internode_batch_delay_ns + cfg.internode_per_msg_delay_ns * n as u64;
            if total > 0 {
                busy_wait_ns(total);
            }
        }
        let src = batch.src as u64;
        match batch.payload {
            Payload::Closures(reqs) => {
                for req in reqs {
                    self.trace_instant(TraceEventKind::RmiExecute, src);
                    req(self);
                    shared.handled.fetch_add(1, Ordering::SeqCst);
                }
            }
            Payload::Frames { bytes, nreqs } => {
                decode_batch(&bytes, batch.src, nreqs, |msg, thunk| {
                    self.trace_instant(TraceEventKind::RmiExecute, src);
                    // Contain handler panics to the requests they belong to:
                    // sync requests caught here already sent a poisoned
                    // response from their own wrapper; an async handler has
                    // no future to poison, so its panic is absorbed and
                    // counted, and later requests in the batch still run.
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        thunk(msg.payload, self)
                    }));
                    shared.handled.fetch_add(1, Ordering::SeqCst);
                    if let Err(p) = caught {
                        bump!(self, poisoned_responses);
                        self.trace_instant(
                            TraceEventKind::PoisonedResponse,
                            self.id() as u64,
                        );
                        let _ = p; // payload already reported by the panic hook
                    }
                })
                .unwrap_or_else(|e| {
                    panic!(
                        "stapl-rts: location {}: batch from location {} failed to decode \
                         ({e}) after its checksums verified — transport admitted an \
                         inconsistent batch",
                        self.id(),
                        batch.src
                    )
                });
            }
        }
        n
    }

    /// One iteration of the wait loop used by futures and barriers: poll,
    /// and back off briefly if nothing arrived.
    ///
    /// A blocked location also flushes its own aggregation buffers —
    /// otherwise a request this location itself depends on (e.g. the first
    /// hop of a forwarded synchronous method) could sit buffered forever
    /// while the location spins on the reply. Under the adaptive flush
    /// policy (`flush_age_us > 0`) only aged buffers go out, so brief
    /// waits do not defeat aggregation; staleness stays bounded by the age.
    pub(crate) fn poll_or_relax(&self) {
        if self.inner.shared.barrier.poisoned.load(Ordering::Relaxed) {
            panic!("stapl-rts: a peer location panicked while this location waited");
        }
        if self.poll() == 0 {
            self.flush_idle();
            std::thread::yield_now();
        }
    }

    pub(crate) fn mark_panicked(&self) {
        self.inner.shared.barrier.poisoned.store(true, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// A barrier across all locations that services incoming requests while
    /// waiting. Unlike [`Location::rmi_fence`] it does *not* guarantee that
    /// pending asynchronous RMIs have completed.
    pub fn barrier(&self) {
        let t0 = self.trace_clock();
        let me = self.clone();
        self.inner.shared.barrier.wait(move || {
            if me.poll() == 0 {
                me.flush_idle();
            }
        });
        self.trace_span_end(TraceEventKind::BarrierSpan, t0, 0);
    }

    /// The paper's `rmi_fence`: completes only when every RMI issued before
    /// the fence — including RMIs issued *by* RMI handlers (method
    /// forwarding chains) — has been executed, globally.
    ///
    /// Implemented as termination detection: repeat (flush, drain, barrier)
    /// rounds until the global sent == handled counters are stable and
    /// equal while all locations are inside the fence.
    pub fn rmi_fence(&self) {
        let t0 = self.trace_clock();
        let mut rounds = 0u64;
        let shared = self.inner.shared.clone();
        loop {
            bump!(self, fence_rounds);
            rounds += 1;
            self.flush_all();
            while self.poll() > 0 {}
            self.barrier();
            // Polling inside the barrier may have executed handlers that
            // enqueued new requests; push those out and drain again.
            self.flush_all();
            while self.poll() > 0 {}
            self.barrier();
            if self.id() == 0 {
                let sent = shared.sent.load(Ordering::SeqCst);
                let mut quiescent = sent == shared.handled.load(Ordering::SeqCst);
                // On an ack-tracking fabric every request's carrying batch
                // must also have been acknowledged: executed-but-unacked
                // requests mean a sender may still retransmit (and the
                // fault injector may still be holding a reordered batch),
                // so the system is not yet quiet.
                if quiescent && self.inner.tracks_acks {
                    quiescent = shared.acked.load(Ordering::SeqCst) == sent;
                }
                shared.fence_done.store(quiescent as u64, Ordering::SeqCst);
            }
            self.barrier();
            let done = shared.fence_done.load(Ordering::SeqCst) == 1;
            // All locations observed the verdict; only now may a new round
            // (or the caller) disturb the counters again.
            self.barrier();
            if done {
                self.trace_span_end(TraceEventKind::FenceSpan, t0, rounds);
                return;
            }
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.inner.shared
    }
}

/// Extracts the human-readable message out of a caught panic payload
/// (panics raise `&str` or `String` in practice; anything else gets a
/// placeholder rather than a second panic inside the handler shim).
fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn busy_wait_ns(ns: u64) {
    let start = std::time::Instant::now();
    let dur = std::time::Duration::from_nanos(ns);
    while start.elapsed() < dur {
        std::hint::spin_loop();
    }
}
