//! Per-location event tracing and latency histograms.
//!
//! The stats counters ([`crate::StatsSnapshot`]) answer *how much*
//! communication happened, aggregated over the whole execution. This module
//! answers *where and when*: every location owns a fixed-capacity ring
//! buffer of typed, monotonically timestamped [`TraceEvent`]s plus a small
//! set of HDR-style power-of-two [`LatencyHistogram`]s, recorded with **no
//! allocation on the hot path** and a single cheap branch when tracing is
//! off (the `RtsConfig::trace` knob, default off).
//!
//! Recorded events:
//!
//! * instants — RMI send / execute / reply, aggregation-buffer flushes and
//!   aged (adaptive) flushes, steal probes and successes, bulk-range and
//!   segment transfers with item counts, directory-cache hit / miss /
//!   stale-heal, migrations;
//! * spans (enter–exit with duration) — barrier waits, fences, collectives,
//!   sync-RMI round trips, split-RMI future waits, executor task bodies.
//!
//! Span durations also feed the latency histograms, which report
//! p50/p90/p99/max for sync-RMI round trips, split-RMI future waits, task
//! bodies, and barrier waits.
//!
//! Two export paths sit on top ([`RunTrace`]): a Chrome trace-event JSON
//! timeline (one pid per location; loadable in Perfetto or
//! `chrome://tracing`) and aggregated [`TraceSummary`] counts + quantiles
//! for the bench harness.
//!
//! **Determinism contract** (mirrors the counter gating of the bench
//! harness): *event and histogram-sample counts* of kinds whose
//! [`TraceEventKind::gating_counter`] is deterministic for a scenario are
//! themselves deterministic under a fixed seed; *timestamps and durations*
//! are always advisory. Timing-dependent kinds (flushes, fence rounds,
//! barriers, steals) report `None` and must never be gated.

use std::collections::VecDeque;

use crate::location::LocId;
use crate::stats::StatsSnapshot;

/// Number of [`TraceEventKind`] variants (array-index upper bound).
pub const KIND_COUNT: usize = 27;

/// Number of latency histograms kept per location; see
/// [`TraceEventKind::histogram_index`] and [`HISTOGRAM_NAMES`].
pub const HISTOGRAM_COUNT: usize = 4;

/// Histogram names, indexed by [`TraceEventKind::histogram_index`]:
/// sync-RMI round trips, split-RMI future waits, executor task bodies, and
/// barrier waits.
pub const HISTOGRAM_NAMES: [&str; HISTOGRAM_COUNT] =
    ["sync_rmi", "future_wait", "task_body", "barrier_wait"];

/// The typed event vocabulary of the trace layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceEventKind {
    /// A request enqueued toward a remote location (`arg` = destination).
    RmiSend,
    /// A delivered request about to execute here (`arg` = source).
    RmiExecute,
    /// A sync / split-phase response shipped back (`arg` = destination).
    RmiReply,
    /// An aggregation buffer pushed into a channel (`arg` = batch size).
    Flush,
    /// An aged buffer force-flushed by the adaptive policy (`arg` = dest).
    AgedFlush,
    /// A steal probe issued by an idle executor.
    StealProbe,
    /// A steal probe that came back with work (`arg` = tasks taken).
    StealSuccess,
    /// One bulk-range RMI (`arg` = elements in the run).
    BulkTransfer,
    /// One segment RMI of the dynamic-container transport (`arg` = items).
    SegmentTransfer,
    /// Items shipped by a data-collecting gather/broadcast (`arg` = items).
    GatherItems,
    /// Directory-routed request served by a cached owner.
    DirCacheHit,
    /// Directory-routed request that paid the home-location hop.
    DirCacheMiss,
    /// A stale cached-owner guess that re-forwarded through home.
    DirCacheStale,
    /// An element / base-container migration (`arg` = moved key or count).
    Migration,
    /// Span: a [`crate::Location::barrier`] enter–exit.
    BarrierSpan,
    /// Span: a [`crate::Location::rmi_fence`] enter–exit.
    FenceSpan,
    /// Span: a collective operation (allreduce and friends).
    CollectiveSpan,
    /// Span: a sync-RMI round trip (issue to value arrival).
    SyncRmiSpan,
    /// Span: a split-RMI / reply-slot future wait inside `get()`.
    FutureWaitSpan,
    /// Span: one executor task body (`arg` = task id).
    TaskSpan,
    /// One RMI encoded into a wire frame by the serialized transport
    /// (`arg` = frame bytes, header included).
    Serialize,
    /// A serialized byte batch pushed into a channel (`arg` = batch bytes,
    /// including the leading control frame).
    WireFlush,
    /// Wire frames discarded by the fabric or receiver — injected drops,
    /// corrupt rejections, duplicate discards (`arg` = frames dropped
    /// since the last reap).
    FaultDrop,
    /// Batches re-sent by the retransmit timer (`arg` = count since the
    /// last reap).
    Retransmit,
    /// Inbound batches rejected by wire validation (`arg` = count since
    /// the last reap).
    ChecksumFail,
    /// Standalone pure-ack batches sent (`arg` = count since the last
    /// reap).
    AckSent,
    /// A handler panic caught on the serialized path (`arg` = the issuing
    /// location for a poisoned response, or this location for a contained
    /// fire-and-forget panic).
    PoisonedResponse,
}

impl TraceEventKind {
    /// Every kind, in declaration order (the order all count exports use).
    pub const ALL: [TraceEventKind; KIND_COUNT] = [
        TraceEventKind::RmiSend,
        TraceEventKind::RmiExecute,
        TraceEventKind::RmiReply,
        TraceEventKind::Flush,
        TraceEventKind::AgedFlush,
        TraceEventKind::StealProbe,
        TraceEventKind::StealSuccess,
        TraceEventKind::BulkTransfer,
        TraceEventKind::SegmentTransfer,
        TraceEventKind::GatherItems,
        TraceEventKind::DirCacheHit,
        TraceEventKind::DirCacheMiss,
        TraceEventKind::DirCacheStale,
        TraceEventKind::Migration,
        TraceEventKind::BarrierSpan,
        TraceEventKind::FenceSpan,
        TraceEventKind::CollectiveSpan,
        TraceEventKind::SyncRmiSpan,
        TraceEventKind::FutureWaitSpan,
        TraceEventKind::TaskSpan,
        TraceEventKind::Serialize,
        TraceEventKind::WireFlush,
        TraceEventKind::FaultDrop,
        TraceEventKind::Retransmit,
        TraceEventKind::ChecksumFail,
        TraceEventKind::AckSent,
        TraceEventKind::PoisonedResponse,
    ];

    /// Stable snake-case name, used as the Chrome trace event name and the
    /// JSON key in bench records.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::RmiSend => "rmi_send",
            TraceEventKind::RmiExecute => "rmi_execute",
            TraceEventKind::RmiReply => "rmi_reply",
            TraceEventKind::Flush => "flush",
            TraceEventKind::AgedFlush => "aged_flush",
            TraceEventKind::StealProbe => "steal_probe",
            TraceEventKind::StealSuccess => "steal_success",
            TraceEventKind::BulkTransfer => "bulk_transfer",
            TraceEventKind::SegmentTransfer => "segment_transfer",
            TraceEventKind::GatherItems => "gather_items",
            TraceEventKind::DirCacheHit => "dir_cache_hit",
            TraceEventKind::DirCacheMiss => "dir_cache_miss",
            TraceEventKind::DirCacheStale => "dir_cache_stale",
            TraceEventKind::Migration => "migration",
            TraceEventKind::BarrierSpan => "barrier",
            TraceEventKind::FenceSpan => "fence",
            TraceEventKind::CollectiveSpan => "collective",
            TraceEventKind::SyncRmiSpan => "sync_rmi",
            TraceEventKind::FutureWaitSpan => "future_wait",
            TraceEventKind::TaskSpan => "task_run",
            TraceEventKind::Serialize => "serialize",
            TraceEventKind::WireFlush => "wire_flush",
            TraceEventKind::FaultDrop => "fault_drop",
            TraceEventKind::Retransmit => "retransmit",
            TraceEventKind::ChecksumFail => "checksum_fail",
            TraceEventKind::AckSent => "ack_sent",
            TraceEventKind::PoisonedResponse => "poisoned_response",
        }
    }

    /// True for enter–exit span kinds (exported as Chrome `B`/`E` pairs);
    /// false for instants (`i`).
    pub fn is_span(self) -> bool {
        matches!(
            self,
            TraceEventKind::BarrierSpan
                | TraceEventKind::FenceSpan
                | TraceEventKind::CollectiveSpan
                | TraceEventKind::SyncRmiSpan
                | TraceEventKind::FutureWaitSpan
                | TraceEventKind::TaskSpan
        )
    }

    /// Index into the per-location histogram array for span kinds whose
    /// duration is sampled; `None` for everything else.
    pub fn histogram_index(self) -> Option<usize> {
        match self {
            TraceEventKind::SyncRmiSpan => Some(0),
            TraceEventKind::FutureWaitSpan => Some(1),
            TraceEventKind::TaskSpan => Some(2),
            TraceEventKind::BarrierSpan => Some(3),
            _ => None,
        }
    }

    /// The stats counter whose determinism implies this kind's *count* is
    /// deterministic for a scenario: when a bench record gates that counter,
    /// the event count may be gated too. `None` marks timing-dependent kinds
    /// (flush activity, fence rounds, barriers, steals) that must never be
    /// gated — the same split the harness applies to the counters
    /// themselves.
    pub fn gating_counter(self) -> Option<&'static str> {
        match self {
            TraceEventKind::RmiSend
            | TraceEventKind::RmiExecute
            | TraceEventKind::SyncRmiSpan
            | TraceEventKind::FutureWaitSpan
            | TraceEventKind::CollectiveSpan
            | TraceEventKind::Migration => Some("remote_requests"),
            TraceEventKind::RmiReply => Some("responses_sent"),
            TraceEventKind::Serialize => Some("messages_serialized"),
            TraceEventKind::BulkTransfer => Some("bulk_requests"),
            TraceEventKind::SegmentTransfer => Some("segment_requests"),
            TraceEventKind::GatherItems => Some("gather_items"),
            TraceEventKind::DirCacheHit => Some("dir_cache_hits"),
            TraceEventKind::DirCacheMiss => Some("dir_cache_misses"),
            TraceEventKind::DirCacheStale => Some("dir_cache_stale"),
            TraceEventKind::TaskSpan => Some("tasks_executed"),
            // A caught handler panic is as deterministic as the workload
            // that panicked; the reliability events below depend on flush
            // boundaries and timer races, so they are never gated as trace
            // counts (the *stats* counters can be, in fault scenarios
            // engineered to be batch-deterministic).
            TraceEventKind::PoisonedResponse => Some("poisoned_responses"),
            TraceEventKind::Flush
            | TraceEventKind::WireFlush
            | TraceEventKind::AgedFlush
            | TraceEventKind::StealProbe
            | TraceEventKind::StealSuccess
            | TraceEventKind::BarrierSpan
            | TraceEventKind::FenceSpan
            | TraceEventKind::FaultDrop
            | TraceEventKind::Retransmit
            | TraceEventKind::ChecksumFail
            | TraceEventKind::AckSent => None,
        }
    }
}

/// One recorded event: monotonic nanoseconds since the execution epoch,
/// a duration (`0` for instants), the kind, and one kind-specific argument
/// (peer id, item count, task id — see the [`TraceEventKind`] docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub t_ns: u64,
    pub dur_ns: u64,
    pub kind: TraceEventKind,
    pub arg: u64,
}

// ---------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------

/// An HDR-style log-bucketed latency histogram: bucket `0` holds exact
/// zeros, bucket `i` holds durations in `[2^(i-1), 2^i)` nanoseconds
/// (clamped at the top). Recording is O(1) with no allocation; quantiles
/// report the bucket's upper bound, except the topmost occupied bucket
/// where the exact maximum is known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, max_ns: 0 }
    }
}

impl LatencyHistogram {
    fn bucket_of(ns: u64) -> usize {
        ((64 - ns.leading_zeros()) as usize).min(63)
    }

    /// The exclusive upper bound of bucket `i` (inclusive `u64::MAX` at the
    /// top).
    fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum recorded duration (`0` when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the upper bound of
    /// the bucket containing the target rank, or the exact maximum when the
    /// rank falls in the topmost occupied bucket. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let top = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .expect("count > 0 implies an occupied bucket");
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return if i == top { self.max_ns } else { Self::bucket_bound(i) };
            }
        }
        self.max_ns
    }

    /// Median (see [`LatencyHistogram::quantile`] for bucket rounding).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

// ---------------------------------------------------------------------
// The per-location ring buffer
// ---------------------------------------------------------------------

/// Per-location trace state: a bounded event ring (oldest events drop
/// first, with an exact drop counter), exact per-kind counts (immune to
/// ring eviction), and the latency histograms. Lives behind a `RefCell` in
/// the location's thread-local state; no atomics anywhere on this path.
pub(crate) struct TraceBuf {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    counts: [u64; KIND_COUNT],
    hists: [LatencyHistogram; HISTOGRAM_COUNT],
}

impl TraceBuf {
    pub(crate) fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceBuf {
            cap,
            events: VecDeque::with_capacity(cap),
            dropped: 0,
            counts: [0; KIND_COUNT],
            hists: [
                LatencyHistogram::default(),
                LatencyHistogram::default(),
                LatencyHistogram::default(),
                LatencyHistogram::default(),
            ],
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        self.counts[ev.kind as usize] += 1;
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    pub(crate) fn instant(&mut self, kind: TraceEventKind, now_ns: u64, arg: u64) {
        debug_assert!(!kind.is_span());
        self.push(TraceEvent { t_ns: now_ns, dur_ns: 0, kind, arg });
    }

    pub(crate) fn span(&mut self, kind: TraceEventKind, start_ns: u64, end_ns: u64, arg: u64) {
        debug_assert!(kind.is_span());
        let dur_ns = end_ns.saturating_sub(start_ns);
        if let Some(h) = kind.histogram_index() {
            self.hists[h].record(dur_ns);
        }
        self.push(TraceEvent { t_ns: start_ns, dur_ns, kind, arg });
    }

    /// Drains this buffer into an exportable [`LocationTrace`].
    pub(crate) fn take_data(&mut self, loc: LocId, stats: StatsSnapshot) -> LocationTrace {
        LocationTrace {
            loc,
            events: std::mem::take(&mut self.events).into(),
            dropped: self.dropped,
            stats,
            counts: self.counts,
            hists: self.hists.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Exported per-location / per-run data
// ---------------------------------------------------------------------

/// Everything one location recorded: the surviving events, how many were
/// evicted from the ring, the per-kind counts and histograms (both exact
/// regardless of eviction), and that location's counter snapshot
/// ([`crate::Location::local_stats`]).
#[derive(Clone)]
pub struct LocationTrace {
    pub loc: LocId,
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
    pub stats: StatsSnapshot,
    counts: [u64; KIND_COUNT],
    hists: [LatencyHistogram; HISTOGRAM_COUNT],
}

impl LocationTrace {
    /// Exact number of events of `kind` recorded (including evicted ones).
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// The histogram named `name` (see [`HISTOGRAM_NAMES`]).
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        HISTOGRAM_NAMES.iter().position(|n| *n == name).map(|i| &self.hists[i])
    }

    /// `(name, histogram)` pairs in [`HISTOGRAM_NAMES`] order.
    pub fn histograms(&self) -> Vec<(&'static str, &LatencyHistogram)> {
        HISTOGRAM_NAMES.iter().copied().zip(self.hists.iter()).collect()
    }

    /// Appends this location's Chrome trace events (a metadata
    /// `process_name`, `B`/`E` span pairs, `i` instants) as one JSON object
    /// string each. Span pairs are emitted in nesting order per pid so
    /// strict importers match them with a stack.
    fn chrome_events(&self, pid: u64, label: &str, out: &mut Vec<String>) {
        let pname = if label.is_empty() {
            format!("location {}", self.loc)
        } else {
            format!("{label} \u{00b7} location {}", self.loc)
        };
        out.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{pname}\"}}}}"
        ));
        fn ts_us(ns: u64) -> String {
            format!("{:.3}", ns as f64 / 1000.0)
        }
        fn end_event(e: &TraceEvent, pid: u64) -> (u64, String) {
            let end = e.t_ns + e.dur_ns;
            let json = format!(
                "{{\"name\":\"{}\",\"cat\":\"rts\",\"ph\":\"E\",\"ts\":{},\"pid\":{pid},\
                 \"tid\":0}}",
                e.kind.name(),
                ts_us(end)
            );
            (end, json)
        }
        // Spans recorded at completion are re-serialized as B/E pairs via
        // an interval stack: sorted by (start, longest-first), a span is
        // closed as soon as the next one starts at or after its end. The
        // single-threaded stack discipline of the recorder guarantees the
        // intervals are properly nested or disjoint.
        let mut spans: Vec<&TraceEvent> = self.events.iter().filter(|e| e.kind.is_span()).collect();
        spans.sort_by(|a, b| a.t_ns.cmp(&b.t_ns).then(b.dur_ns.cmp(&a.dur_ns)));
        let mut be: Vec<(u64, String)> = Vec::with_capacity(spans.len() * 2);
        let mut stack: Vec<&TraceEvent> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if top.t_ns + top.dur_ns <= s.t_ns {
                    let top = stack.pop().expect("non-empty stack");
                    be.push(end_event(top, pid));
                } else {
                    break;
                }
            }
            be.push((
                s.t_ns,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"rts\",\"ph\":\"B\",\"ts\":{},\"pid\":{pid},\
                     \"tid\":0,\"args\":{{\"v\":{}}}}}",
                    s.kind.name(),
                    ts_us(s.t_ns),
                    s.arg
                ),
            ));
            stack.push(s);
        }
        while let Some(top) = stack.pop() {
            be.push(end_event(top, pid));
        }
        let instants: Vec<(u64, String)> = self
            .events
            .iter()
            .filter(|e| !e.kind.is_span())
            .map(|e| {
                (
                    e.t_ns,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"rts\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                         \"pid\":{pid},\"tid\":0,\"args\":{{\"v\":{}}}}}",
                        e.kind.name(),
                        ts_us(e.t_ns),
                        e.arg
                    ),
                )
            })
            .collect();
        // Merge the two (already chronologically sorted) streams, keeping
        // B/E relative order intact on timestamp ties.
        let (mut i, mut j) = (0, 0);
        while i < be.len() || j < instants.len() {
            let take_be = match (be.get(i), instants.get(j)) {
                (Some(a), Some(b)) => a.0 <= b.0,
                (Some(_), None) => true,
                _ => false,
            };
            if take_be {
                out.push(std::mem::take(&mut be[i].1));
                i += 1;
            } else {
                out.push(instants[j].1.clone());
                j += 1;
            }
        }
    }
}

/// The trace of one whole SPMD execution (one [`LocationTrace`] per
/// location), returned by [`crate::execute_collect_traced`].
#[derive(Clone)]
pub struct RunTrace {
    pub nlocs: usize,
    pub locs: Vec<LocationTrace>,
}

impl RunTrace {
    /// Total surviving events across all locations.
    pub fn total_events(&self) -> usize {
        self.locs.iter().map(|l| l.events.len()).sum()
    }

    /// Aggregates counts and histograms over all locations.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for l in &self.locs {
            for i in 0..KIND_COUNT {
                s.counts[i] += l.counts[i];
            }
            for (a, b) in s.hists.iter_mut().zip(&l.hists) {
                a.merge(b);
            }
            s.dropped += l.dropped;
        }
        s
    }

    /// Appends Chrome trace events for every location, with pids offset by
    /// `pid_base` and process names prefixed by `label` — so several runs
    /// can share one trace file without pid collisions.
    pub fn push_chrome_events(&self, pid_base: u64, label: &str, out: &mut Vec<String>) {
        for l in &self.locs {
            l.chrome_events(pid_base + l.loc as u64, label, out);
        }
    }

    /// Serializes the whole run as a Chrome trace-event JSON array (one pid
    /// per location), loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = Vec::new();
        self.push_chrome_events(0, "", &mut out);
        let mut s = String::from("[\n");
        s.push_str(&out.join(",\n"));
        s.push_str("\n]\n");
        s
    }
}

/// Aggregated (all-locations) event counts and latency histograms of one
/// run — what the bench harness embeds into `BENCH_*.json` records.
#[derive(Clone)]
pub struct TraceSummary {
    counts: [u64; KIND_COUNT],
    hists: [LatencyHistogram; HISTOGRAM_COUNT],
    pub dropped: u64,
}

impl Default for TraceSummary {
    fn default() -> Self {
        TraceSummary {
            counts: [0; KIND_COUNT],
            hists: [
                LatencyHistogram::default(),
                LatencyHistogram::default(),
                LatencyHistogram::default(),
                LatencyHistogram::default(),
            ],
            dropped: 0,
        }
    }
}

impl TraceSummary {
    /// Exact number of events of `kind` across all locations.
    pub fn count(&self, kind: TraceEventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// All `(name, count)` pairs in [`TraceEventKind::ALL`] order.
    pub fn event_counts(&self) -> Vec<(&'static str, u64)> {
        TraceEventKind::ALL.iter().map(|k| (k.name(), self.counts[*k as usize])).collect()
    }

    /// The merged histogram named `name` (see [`HISTOGRAM_NAMES`]).
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        HISTOGRAM_NAMES.iter().position(|n| *n == name).map(|i| &self.hists[i])
    }

    /// `(name, histogram)` pairs in [`HISTOGRAM_NAMES`] order.
    pub fn histograms(&self) -> Vec<(&'static str, &LatencyHistogram)> {
        HISTOGRAM_NAMES.iter().copied().zip(self.hists.iter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_table_is_consistent() {
        assert_eq!(TraceEventKind::ALL.len(), KIND_COUNT);
        for (i, k) in TraceEventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{:?} out of declaration order", k);
        }
        // Names are unique except the deliberate span/histogram aliases.
        let mut names: Vec<&str> = TraceEventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KIND_COUNT, "duplicate event-kind names");
        for k in TraceEventKind::ALL {
            if k.histogram_index().is_some() {
                assert!(k.is_span(), "{:?}: only spans feed histograms", k);
            }
        }
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0);
        for ns in [0u64, 1, 2, 3, 900, 1000, 1100, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_ns(), 1_000_000);
        // p50 falls in the 2-3ns bucket → upper bound 4.
        assert_eq!(h.quantile(0.5), 4);
        // The top occupied bucket reports the exact max, not a power of 2.
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert!(h.p99() >= h.p90() && h.p90() >= h.p50());
    }

    #[test]
    fn histogram_zero_and_huge_samples() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.p50(), 0);
        h.record(u64::MAX);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_adds_samples() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 2000);
    }

    #[test]
    fn ring_drops_oldest_but_counts_stay_exact() {
        let mut buf = TraceBuf::new(4);
        for i in 0..10u64 {
            buf.instant(TraceEventKind::RmiSend, i, i);
        }
        let data = buf.take_data(0, StatsSnapshot::default());
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.dropped, 6);
        assert_eq!(data.count(TraceEventKind::RmiSend), 10, "counts ignore eviction");
        // The survivors are the most recent events.
        assert_eq!(data.events[0].t_ns, 6);
        assert_eq!(data.events[3].t_ns, 9);
    }

    #[test]
    fn spans_feed_histograms() {
        let mut buf = TraceBuf::new(16);
        buf.span(TraceEventKind::SyncRmiSpan, 100, 1100, 0);
        buf.span(TraceEventKind::BarrierSpan, 0, 50, 0);
        let data = buf.take_data(2, StatsSnapshot::default());
        assert_eq!(data.histogram("sync_rmi").unwrap().count(), 1);
        assert_eq!(data.histogram("sync_rmi").unwrap().max_ns(), 1000);
        assert_eq!(data.histogram("barrier_wait").unwrap().count(), 1);
        assert_eq!(data.histogram("task_body").unwrap().count(), 0);
        assert!(data.histogram("no_such").is_none());
    }

    #[test]
    fn chrome_export_emits_nested_be_pairs() {
        let mut buf = TraceBuf::new(64);
        // Inner span completes (and is recorded) before the outer one — the
        // exporter must still emit outer-B, inner-B, inner-E, outer-E.
        buf.span(TraceEventKind::BarrierSpan, 200, 300, 0);
        buf.span(TraceEventKind::FenceSpan, 100, 500, 0);
        buf.instant(TraceEventKind::RmiSend, 150, 1);
        let run =
            RunTrace { nlocs: 1, locs: vec![buf.take_data(0, StatsSnapshot::default())] };
        let json = run.to_chrome_json();
        let fence_b = json.find("\"name\":\"fence\",\"cat\":\"rts\",\"ph\":\"B\"").unwrap();
        let barrier_b = json.find("\"name\":\"barrier\",\"cat\":\"rts\",\"ph\":\"B\"").unwrap();
        let barrier_e = json.find("\"name\":\"barrier\",\"cat\":\"rts\",\"ph\":\"E\"").unwrap();
        let fence_e = json.find("\"name\":\"fence\",\"cat\":\"rts\",\"ph\":\"E\"").unwrap();
        assert!(fence_b < barrier_b && barrier_b < barrier_e && barrier_e < fence_e);
        assert!(json.contains("\"ph\":\"i\""), "instants present");
        assert!(json.contains("\"name\":\"process_name\""), "pid metadata present");
    }

    #[test]
    fn summary_aggregates_locations() {
        let mut a = TraceBuf::new(8);
        let mut b = TraceBuf::new(8);
        a.instant(TraceEventKind::RmiSend, 1, 0);
        a.span(TraceEventKind::SyncRmiSpan, 0, 10, 0);
        b.instant(TraceEventKind::RmiSend, 2, 0);
        let run = RunTrace {
            nlocs: 2,
            locs: vec![
                a.take_data(0, StatsSnapshot::default()),
                b.take_data(1, StatsSnapshot::default()),
            ],
        };
        let s = run.summary();
        assert_eq!(s.count(TraceEventKind::RmiSend), 2);
        assert_eq!(s.histogram("sync_rmi").unwrap().count(), 1);
        assert_eq!(s.event_counts().len(), KIND_COUNT);
        assert_eq!(run.total_events(), 3);
    }
}
