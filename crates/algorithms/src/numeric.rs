//! Numeric pAlgorithms: parallel prefix sums (`p_partial_sum`, the
//! "important parallel algorithmic technique" of Chapter III) and scans.

use stapl_core::interfaces::IndexedContainer;

/// `p_partial_sum`: in-place inclusive prefix sum over an indexed
/// container. Three phases: local scan per sub-domain, exclusive scan of
/// the sub-domain totals (collective), local offset add.
///
/// **Collective.** `op` must be associative with identity `identity`.
pub fn p_partial_sum<C, F>(c: &C, identity: C::Value, op: F)
where
    C: IndexedContainer,
    C::Value: Send + Clone + 'static,
    F: Fn(&C::Value, &C::Value) -> C::Value,
{
    let loc = c.location().clone();
    // Phase 1: local inclusive scan within each sub-domain; record each
    // sub-domain's (bcid, total).
    let mut totals: Vec<(usize, C::Value)> = Vec::new();
    {
        let mut current_bcid = usize::MAX;
        let mut acc = identity.clone();
        // Sub-domain boundaries come from the container's partition;
        // for_each_local iterates bcid-ordered, gid-ordered.
        let bounds: Vec<(usize, usize, usize)> = c
            .local_subdomains()
            .iter()
            .flat_map(|(b, sd)| {
                let mut v = Vec::new();
                let mut iter = sd.iter().peekable();
                if let Some(&first) = iter.peek() {
                    let mut last = first;
                    for g in iter {
                        last = g;
                    }
                    v.push((*b, first, last));
                }
                v
            })
            .collect();
        let _ = &bounds;
        c.for_each_local_mut(|g, v| {
            // Detect sub-domain change by bcid of gid.
            let b = bounds
                .iter()
                .find(|(_, lo, hi)| g >= *lo && g <= *hi)
                .map(|(b, _, _)| *b)
                .expect("gid outside local sub-domains");
            if b != current_bcid {
                if current_bcid != usize::MAX {
                    totals.push((current_bcid, acc.clone()));
                }
                current_bcid = b;
                acc = identity.clone();
            }
            acc = op(&acc, v);
            *v = acc.clone();
        });
        if current_bcid != usize::MAX {
            totals.push((current_bcid, acc.clone()));
        }
    }
    // Phase 2: exclusive scan of sub-domain totals in bcid order.
    let all = loc.allgather(totals);
    let mut flat: Vec<(usize, C::Value)> = all.into_iter().flatten().collect();
    flat.sort_by_key(|(b, _)| *b);
    let my_bcids: Vec<usize> = c.local_subdomains().iter().map(|(b, _)| *b).collect();
    let mut offsets: std::collections::HashMap<usize, C::Value> = std::collections::HashMap::new();
    {
        let mut acc = identity.clone();
        for (b, t) in &flat {
            if my_bcids.contains(b) {
                offsets.insert(*b, acc.clone());
            }
            acc = op(&acc, t);
        }
    }
    // Phase 3: add the sub-domain offset to every local element.
    {
        let bounds: Vec<(usize, usize, usize)> = c
            .local_subdomains()
            .iter()
            .filter_map(|(b, sd)| {
                let mut iter = sd.iter();
                let first = iter.next()?;
                let last = iter.last().unwrap_or(first);
                Some((*b, first, last))
            })
            .collect();
        c.for_each_local_mut(|g, v| {
            let b = bounds
                .iter()
                .find(|(_, lo, hi)| g >= *lo && g <= *hi)
                .map(|(b, _, _)| *b)
                .expect("gid outside local sub-domains");
            if let Some(off) = offsets.get(&b) {
                *v = op(off, v);
            }
        });
    }
    loc.barrier();
}

/// Convenience: integer inclusive prefix sum.
pub fn p_prefix_sum_u64<C>(c: &C)
where
    C: IndexedContainer<Value = u64>,
{
    p_partial_sum(c, 0u64, |a, b| a + b);
}

/// Convenience: i64 inclusive prefix sum (used by the Euler-tour depth
/// computation where weights are ±1).
pub fn p_prefix_sum_i64<C>(c: &C)
where
    C: IndexedContainer<Value = i64>,
{
    p_partial_sum(c, 0i64, |a, b| a + b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::array::PArray;
    use stapl_core::interfaces::ElementRead;
    use stapl_core::mapper::CyclicMapper;
    use stapl_core::partition::BlockedPartition;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn prefix_sum_matches_sequential() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 25, |i| (i % 5 + 1) as u64);
            p_prefix_sum_u64(&a);
            let mut expect = 0u64;
            for i in 0..25 {
                expect += (i % 5 + 1) as u64;
                assert_eq!(a.get_element(i), expect, "prefix mismatch at {i}");
            }
            let _ = loc;
        });
    }

    #[test]
    fn prefix_sum_with_multiple_bcontainers_per_location() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::with_partition(
                loc,
                Box::new(BlockedPartition::new(20, 3)), // 7 sub-domains over 2 locs
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
            );
            crate::map_func::p_generate(&a, |g| g as u64);
            p_prefix_sum_u64(&a);
            let mut expect = 0u64;
            for i in 0..20 {
                expect += i as u64;
                assert_eq!(a.get_element(i), expect);
            }
            let _ = loc;
        });
    }

    #[test]
    fn signed_prefix_sum() {
        execute(RtsConfig::default(), 2, |loc| {
            // +1/-1 weights: prefix is the tree-walk depth pattern.
            let a = PArray::from_fn(loc, 8, |i| if i % 2 == 0 { 1i64 } else { -1 });
            p_prefix_sum_i64(&a);
            let expect = [1, 0, 1, 0, 1, 0, 1, 0];
            for (i, e) in expect.iter().enumerate() {
                assert_eq!(a.get_element(i), *e);
            }
            let _ = loc;
        });
    }

    #[test]
    fn prefix_sum_single_location() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::from_fn(loc, 5, |_| 2u64);
            p_prefix_sum_u64(&a);
            assert_eq!(a.get_element(4), 10);
            let _ = loc;
        });
    }

    #[test]
    fn generic_op_max_scan() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3][i]);
            p_partial_sum(&a, 0u64, |x, y| *x.max(y));
            let expect = [3u64, 3, 4, 4, 5, 9, 9, 9, 9, 9];
            for (i, e) in expect.iter().enumerate() {
                assert_eq!(a.get_element(i), *e);
            }
            let _ = loc;
        });
    }
}
