//! MapReduce over associative pContainers (Chapter XII.C, Fig. 59): the
//! map phase emits (key, value) pairs that are *combined at the owner*
//! through the hash-partitioned shuffle (`apply_or_insert`), so the
//! reduce happens incrementally as pairs arrive — no separate shuffle
//! materialization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stapl_containers::associative::PHashMap;
use stapl_core::gid::Key;
use stapl_core::interfaces::PContainer;
use stapl_rts::Location;

/// **Collective.** Generic MapReduce: every location maps its own
/// `inputs`, emitting pairs through the closure handed to `map`; values
/// with equal keys are combined with `combine` at the key's owner.
/// Returns after a commit, so the result is globally consistent.
pub fn map_reduce<I, K, V, M, C>(
    out: &PHashMap<K, V>,
    inputs: impl IntoIterator<Item = I>,
    map: M,
    identity: V,
    combine: C,
) where
    K: Key + std::hash::Hash,
    V: Send + Clone + 'static,
    M: Fn(I, &mut dyn FnMut(K, V)),
    C: Fn(&mut V, V) + Send + Clone + 'static,
{
    for item in inputs {
        map(item, &mut |k, v| {
            let c = combine.clone();
            out.apply_or_insert(k, identity.clone(), move |slot| c(slot, v));
        });
    }
    out.commit();
}

/// **Collective.** The paper's flagship MapReduce: counts word
/// occurrences in this location's shard of a corpus (Fig. 59 used the
/// Simple English Wikipedia dump; see [`synthetic_corpus`]).
pub fn word_count(loc: &Location, local_text: &str) -> PHashMap<String, u64> {
    let counts: PHashMap<String, u64> = PHashMap::new(loc);
    map_reduce(
        &counts,
        local_text.split_whitespace(),
        |w, emit| emit(w.to_string(), 1),
        0,
        |acc, v| *acc += v,
    );
    counts
}

/// Generates this location's shard of a synthetic corpus with a
/// Zipf-like word distribution (rank-r word has weight 1/r), substituting
/// for the paper's 1.5 GB Wikipedia dump: the skewed key popularity is
/// what stresses the combining shuffle.
pub fn synthetic_corpus(loc: &Location, words_per_location: usize, vocab: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ (loc.id() as u64).wrapping_mul(0x2545_f491));
    // Inverse-CDF sampling over harmonic weights.
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut out = String::with_capacity(words_per_location * 7);
    for _ in 0..words_per_location {
        let x: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < x).min(vocab - 1);
        out.push_str("word");
        out.push_str(&idx.to_string());
        out.push(' ');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_core::interfaces::AssociativeContainer;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn word_count_counts() {
        execute(RtsConfig::default(), 3, |loc| {
            // Each location contributes the same sentence.
            let counts = word_count(loc, "a b a c a b");
            assert_eq!(counts.find("a".into()), Some(9));
            assert_eq!(counts.find("b".into()), Some(6));
            assert_eq!(counts.find("c".into()), Some(3));
            assert_eq!(counts.find("d".into()), None);
            assert_eq!(counts.global_size(), 3);
        });
    }

    #[test]
    fn map_reduce_with_custom_combine() {
        execute(RtsConfig::default(), 2, |loc| {
            // Max-by-key over (key, value) pairs.
            let out: PHashMap<u32, u64> = PHashMap::new(loc);
            let pairs: Vec<(u32, u64)> =
                vec![(1, loc.id() as u64 * 10 + 5), (2, loc.id() as u64), (1, 3)];
            map_reduce(
                &out,
                pairs,
                |(k, v), emit| emit(k, v),
                0,
                |acc, v| {
                    if v > *acc {
                        *acc = v;
                    }
                },
            );
            assert_eq!(out.find(1), Some(15));
            assert_eq!(out.find(2), Some(1));
        });
    }

    #[test]
    fn corpus_is_zipf_skewed_and_deterministic() {
        execute(RtsConfig::default(), 2, |loc| {
            let text = synthetic_corpus(loc, 2000, 50, 42);
            let again = synthetic_corpus(loc, 2000, 50, 42);
            assert_eq!(text, again, "same seed, same shard");
            let counts = word_count(loc, &text);
            let top = counts.find("word0".into()).unwrap_or(0);
            let rare = counts.find("word49".into()).unwrap_or(0);
            assert!(top > rare * 3, "zipf head {top} should dwarf tail {rare}");
            // Total counted words = words emitted.
            let mut total = 0u64;
            counts.for_each_local(|_, c| total += c);
            assert_eq!(loc.allreduce_sum(total), 4000);
        });
    }

    #[test]
    fn shards_differ_across_locations() {
        execute(RtsConfig::default(), 2, |loc| {
            let mine = synthetic_corpus(loc, 100, 20, 7);
            let shards = loc.allgather(mine);
            assert_ne!(shards[0], shards[1]);
        });
    }
}
