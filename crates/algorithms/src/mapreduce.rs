//! MapReduce over associative pContainers (Chapter XII.C, Fig. 59): the
//! map phase emits (key, value) pairs that are *combined at the owner*
//! through the hash-partitioned shuffle (`apply_or_insert`), so the
//! reduce happens incrementally as pairs arrive — no separate shuffle
//! materialization.

use std::collections::HashMap;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stapl_containers::associative::{KvStore, PHashMap};
use stapl_core::gid::Key;
use stapl_core::interfaces::{PContainer, SegmentId};
use stapl_rts::Location;
use stapl_views::assoc_view::MapView;

/// **Collective.** Generic MapReduce: every location maps its own
/// `inputs`, emitting pairs through the closure handed to `map`; values
/// with equal keys are combined with `combine` at the key's owner.
/// Returns after a commit, so the result is globally consistent.
pub fn map_reduce<I, K, V, M, C>(
    out: &PHashMap<K, V>,
    inputs: impl IntoIterator<Item = I>,
    map: M,
    identity: V,
    combine: C,
) where
    K: Key + std::hash::Hash,
    V: Send + Clone + 'static,
    M: Fn(I, &mut dyn FnMut(K, V)),
    C: Fn(&mut V, V) + Send + Clone + 'static,
{
    for item in inputs {
        map(item, &mut |k, v| {
            let c = combine.clone();
            out.apply_or_insert(k, identity.clone(), move |slot| c(slot, v));
        });
    }
    out.commit();
}

/// **Collective.** MapReduce over a key-value view — the bucket-grained
/// shuffle: every location maps its local pairs of `input`, **combines
/// equal output keys locally first**, then ships the combined partials
/// with one `merge_segment` RMI per destination (owner, bucket) of `out`,
/// where they merge into the final entries. One message per bucket
/// instead of one per emitted pair — the chunked-DHT insert pattern that
/// makes word-count / histogram / group-by scale; the per-pair
/// [`map_reduce`] remains the streaming fallback.
///
/// `identity` must be `combine`'s identity, and `combine` must be
/// associative and commutative (pairs arrive from all locations in
/// nondeterministic order).
pub fn p_map_reduce_kv<K, V, S, K2, V2, M, C>(
    input: &MapView<K, V, S>,
    out: &PHashMap<K2, V2>,
    map: M,
    identity: V2,
    combine: C,
) where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
    K2: Key + Hash,
    V2: Send + Clone + 'static,
    M: Fn(&K, &V, &mut dyn FnMut(K2, V2)),
    C: Fn(&mut V2, V2) + Clone + Send + 'static,
{
    // Map + local combine: one entry per distinct output key.
    let mut partial: HashMap<K2, V2> = HashMap::new();
    input.for_each_kv(|k, v| {
        map(k, v, &mut |k2, v2| {
            let slot = partial.entry(k2).or_insert_with(|| identity.clone());
            combine(slot, v2);
        })
    });
    // Shuffle: group by destination bucket, one bulk merge per bucket.
    let mut per_bucket: HashMap<SegmentId, Vec<(K2, V2)>> = HashMap::new();
    for (k2, v2) in partial {
        per_bucket.entry(out.bucket_of(&k2)).or_default().push((k2, v2));
    }
    for (sid, items) in per_bucket {
        out.merge_segment(sid, items, identity.clone(), combine.clone());
    }
    out.commit();
}

/// **Collective.** Word count over a distributed document collection (a
/// `MapView` of id → text): the chunked-MapReduce flagship. Each location
/// counts its local documents' words, then ships one combined message per
/// destination bucket.
pub fn word_count_kv<S>(
    docs: &MapView<u64, String, S>,
    out: &PHashMap<String, u64>,
) where
    S: KvStore<u64, String>,
{
    p_map_reduce_kv(
        docs,
        out,
        |_, text, emit| {
            // Pre-count within the document so the allocation (to_string)
            // happens once per distinct word, not once per occurrence.
            let mut counts: HashMap<&str, u64> = HashMap::new();
            for w in text.split_whitespace() {
                *counts.entry(w).or_insert(0) += 1;
            }
            for (w, n) in counts {
                emit(w.to_string(), n);
            }
        },
        0,
        |acc, v| *acc += v,
    );
}

/// **Collective.** The paper's flagship MapReduce: counts word
/// occurrences in this location's shard of a corpus (Fig. 59 used the
/// Simple English Wikipedia dump; see [`synthetic_corpus`]).
pub fn word_count(loc: &Location, local_text: &str) -> PHashMap<String, u64> {
    let counts: PHashMap<String, u64> = PHashMap::new(loc);
    map_reduce(
        &counts,
        local_text.split_whitespace(),
        |w, emit| emit(w.to_string(), 1),
        0,
        |acc, v| *acc += v,
    );
    counts
}

/// Generates this location's shard of a synthetic corpus with a
/// Zipf-like word distribution (rank-r word has weight 1/r), substituting
/// for the paper's 1.5 GB Wikipedia dump: the skewed key popularity is
/// what stresses the combining shuffle.
pub fn synthetic_corpus(loc: &Location, words_per_location: usize, vocab: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ (loc.id() as u64).wrapping_mul(0x2545_f491));
    // Inverse-CDF sampling over harmonic weights.
    let weights: Vec<f64> = (1..=vocab).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(vocab);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut out = String::with_capacity(words_per_location * 7);
    for _ in 0..words_per_location {
        let x: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < x).min(vocab - 1);
        out.push_str("word");
        out.push_str(&idx.to_string());
        out.push(' ');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_core::interfaces::AssociativeContainer;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn word_count_counts() {
        execute(RtsConfig::default(), 3, |loc| {
            // Each location contributes the same sentence.
            let counts = word_count(loc, "a b a c a b");
            assert_eq!(counts.find("a".into()), Some(9));
            assert_eq!(counts.find("b".into()), Some(6));
            assert_eq!(counts.find("c".into()), Some(3));
            assert_eq!(counts.find("d".into()), None);
            assert_eq!(counts.global_size(), 3);
        });
    }

    #[test]
    fn map_reduce_with_custom_combine() {
        execute(RtsConfig::default(), 2, |loc| {
            // Max-by-key over (key, value) pairs.
            let out: PHashMap<u32, u64> = PHashMap::new(loc);
            let pairs: Vec<(u32, u64)> =
                vec![(1, loc.id() as u64 * 10 + 5), (2, loc.id() as u64), (1, 3)];
            map_reduce(
                &out,
                pairs,
                |(k, v), emit| emit(k, v),
                0,
                |acc, v| {
                    if v > *acc {
                        *acc = v;
                    }
                },
            );
            assert_eq!(out.find(1), Some(15));
            assert_eq!(out.find(2), Some(1));
        });
    }

    #[test]
    fn kv_word_count_matches_sequential_model() {
        execute(RtsConfig::default(), 4, |loc| {
            // Distributed documents: every location contributes two lines.
            let docs: PHashMap<u64, String> = PHashMap::new(loc);
            let lines = [
                "the quick brown fox", "jumps over the lazy dog",
                "the fox likes the dog", "a dog and a fox",
                "over and over again", "the quick dog sleeps",
                "a lazy brown fox jumps", "again the fox sleeps",
            ];
            for (i, line) in lines.iter().enumerate() {
                if i % loc.nlocs() == loc.id() {
                    docs.insert_async(i as u64, line.to_string());
                }
            }
            docs.commit();
            // Sequential model over the full collection.
            let mut model: std::collections::HashMap<&str, u64> = Default::default();
            for line in lines {
                for w in line.split_whitespace() {
                    *model.entry(w).or_insert(0) += 1;
                }
            }
            let counts: PHashMap<String, u64> = PHashMap::new(loc);
            word_count_kv(&MapView::new(docs), &counts);
            assert_eq!(counts.global_size(), model.len());
            for (w, n) in &model {
                assert_eq!(counts.find(w.to_string()), Some(*n), "count of {w:?}");
            }
        });
    }

    #[test]
    fn kv_shuffle_is_bucket_grained_not_pair_grained() {
        execute(RtsConfig::unbuffered(), 4, |loc| {
            // A skewed corpus with many repeated words: the local combine
            // must collapse them before the shuffle.
            let docs: PHashMap<u64, String> = PHashMap::new(loc);
            let text = synthetic_corpus(loc, 400, 40, 3);
            docs.insert_async(loc.id() as u64, text.clone());
            docs.commit();
            let words: usize = text.split_whitespace().count();
            let view = MapView::new(docs);

            let chunked: PHashMap<String, u64> = PHashMap::new(loc);
            loc.rmi_fence();
            // Snapshot, then barrier, so no location starts the measured
            // phase before every location has its baseline.
            let before = loc.stats();
            loc.barrier();
            word_count_kv(&view, &chunked);
            let after = loc.stats();
            let chunked_reqs = after.remote_requests - before.remote_requests;
            assert!(after.segment_requests > before.segment_requests);

            // Per-pair baseline: one apply_or_insert per word occurrence.
            let streaming: PHashMap<String, u64> = PHashMap::new(loc);
            loc.rmi_fence();
            let before = loc.stats();
            loc.barrier();
            map_reduce(
                &streaming,
                text.split_whitespace(),
                |w, emit| emit(w.to_string(), 1),
                0,
                |acc, v| *acc += v,
            );
            let streaming_reqs = loc.stats().remote_requests - before.remote_requests;

            // Identical results...
            assert_eq!(chunked.global_size(), streaming.global_size());
            let mine = chunked.collect_ordered();
            for (w, n) in mine {
                assert_eq!(streaming.find(w.clone()), Some(n), "count of {w:?}");
            }
            // ... at a fraction of the traffic (words >> buckets).
            assert!(
                chunked_reqs * 10 <= streaming_reqs.max(1),
                "bucket-grained shuffle should cut remote requests >= 10x \
                 (got {chunked_reqs} vs {streaming_reqs} for {words} words)"
            );
        });
    }

    #[test]
    fn corpus_is_zipf_skewed_and_deterministic() {
        execute(RtsConfig::default(), 2, |loc| {
            let text = synthetic_corpus(loc, 2000, 50, 42);
            let again = synthetic_corpus(loc, 2000, 50, 42);
            assert_eq!(text, again, "same seed, same shard");
            let counts = word_count(loc, &text);
            let top = counts.find("word0".into()).unwrap_or(0);
            let rare = counts.find("word49".into()).unwrap_or(0);
            assert!(top > rare * 3, "zipf head {top} should dwarf tail {rare}");
            // Total counted words = words emitted.
            let mut total = 0u64;
            counts.for_each_local(|_, c| total += c);
            assert_eq!(loc.allreduce_sum(total), 4000);
        });
    }

    #[test]
    fn shards_differ_across_locations() {
        execute(RtsConfig::default(), 2, |loc| {
            let mine = synthetic_corpus(loc, 100, 20, 7);
            let shards = loc.allgather(mine);
            assert_ne!(shards[0], shards[1]);
        });
    }
}
