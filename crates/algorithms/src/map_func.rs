//! The STL-like pAlgorithms (the `p_generate` / `p_for_each` /
//! `p_accumulate` family evaluated in Figs. 33, 40 and 60).
//!
//! Two flavors are provided, mirroring the paper:
//!
//! * **Container-native** algorithms take any container implementing
//!   [`LocalIteration`] and process each location's elements in place —
//!   the native-view fast path (no communication except the final fence /
//!   reduction). This works uniformly for pArray, pVector, pList and
//!   pMatrix, which is exactly the genericity Fig. 40 and Fig. 60
//!   measure.
//! * **View-based** algorithms (suffix `_view`) take any
//!   [`ViewRead`]/[`ViewWrite`] and process the view's chunks through the
//!   chunk-at-a-time primitives (`for_each_chunk`/`fill_from`/
//!   `apply_chunks`): localized views run at slice speed, unlocalized
//!   ones pay element-access routing.
//!
//! The `p_copy`/`p_transform`/`p_equal`/`p_inner_product` family requires
//! [`RangedContainer`] and moves data as **one bulk RMI per (owner,
//! contiguous run)** — O(runs) messages on misaligned distributions where
//! the `_elementwise` fallbacks (for pList/pMatrix-style GIDs) pay O(N).
//!
//! All algorithms are **collective**.

use stapl_core::gid::Gid;
use stapl_core::interfaces::{ElementWrite, LocalIteration, RangedContainer};
use stapl_views::view::{ViewRead, ViewWrite};

/// `p_generate`: assigns `gen(gid)` to every element.
pub fn p_generate<C, G, F>(c: &C, gen: F)
where
    G: Gid,
    C: LocalIteration<G> + ElementWrite<G>,
    F: Fn(G) -> C::Value,
{
    c.for_each_local_mut(|g, v| *v = gen(g));
    c.location().rmi_fence();
}

/// `p_for_each`: applies `f` to every element in place.
pub fn p_for_each<C, G, F>(c: &C, f: F)
where
    G: Gid,
    C: LocalIteration<G>,
    F: Fn(&mut C::Value),
{
    c.for_each_local_mut(|_, v| f(v));
    c.location().rmi_fence();
}

/// `p_accumulate`: folds every element with `op` starting from `init`
/// (which must be `op`'s identity); `op` must be associative. Returns the
/// global fold on every location.
pub fn p_accumulate<C, G, F>(c: &C, init: C::Value, op: F) -> C::Value
where
    G: Gid,
    C: LocalIteration<G>,
    C::Value: Send + Clone + 'static,
    F: Fn(C::Value, &C::Value) -> C::Value,
{
    // Fold by value: move the accumulator through `op` instead of cloning
    // it on every element (an `Option` dance because the closure cannot
    // move out of the captured slot directly).
    let mut acc = Some(init.clone());
    c.for_each_local(|_, v| {
        let a = acc.take().expect("accumulator is always replaced");
        acc = Some(op(a, v));
    });
    let partials = c.location().allgather(acc.expect("accumulator present"));
    partials.into_iter().fold(init, |a, b| op(a, &b))
}

/// `p_reduce`: the general reduction — `map` extracts a summary from each
/// element, `combine` merges summaries (associative). Returns the global
/// reduction on every location; `None` for an empty container.
pub fn p_reduce<C, G, A, M, R>(c: &C, map: M, combine: R) -> Option<A>
where
    G: Gid,
    C: LocalIteration<G>,
    A: Send + Clone + 'static,
    M: Fn(G, &C::Value) -> A,
    R: Fn(A, A) -> A + Copy,
{
    let mut acc: Option<A> = None;
    c.for_each_local(|g, v| {
        let x = map(g, v);
        acc = Some(match acc.take() {
            None => x,
            Some(a) => combine(a, x),
        });
    });
    let partials = c.location().allgather(acc);
    partials.into_iter().flatten().reduce(combine)
}

/// `p_accumulate` for numeric sums — the shape the paper benchmarks.
pub fn p_sum<C, G>(c: &C) -> u64
where
    G: Gid,
    C: LocalIteration<G, Value = u64>,
{
    p_reduce(c, |_, v| *v, |a, b| a.wrapping_add(b)).unwrap_or(0)
}

/// `p_count_if`: number of elements satisfying `pred`.
pub fn p_count_if<C, G, P>(c: &C, pred: P) -> usize
where
    G: Gid,
    C: LocalIteration<G>,
    P: Fn(&C::Value) -> bool,
{
    let mut n = 0u64;
    c.for_each_local(|_, v| {
        if pred(v) {
            n += 1;
        }
    });
    c.location().allreduce_sum(n) as usize
}

/// `p_find_if`: some GID whose element satisfies `pred`, or `None`.
/// (Any match may be returned; the paper's find returns the first in
/// linearization order only for sequential containers.)
pub fn p_find_if<C, G, P>(c: &C, pred: P) -> Option<G>
where
    G: Gid,
    C: LocalIteration<G>,
    P: Fn(&C::Value) -> bool,
{
    // Short-circuiting scan: stop walking local storage at the first match
    // (containers with early-exit support stop immediately; others fall
    // back to a suppressed full walk).
    let mut found: Option<G> = None;
    c.try_for_each_local(|g, v| {
        if pred(v) {
            found = Some(g);
            false
        } else {
            true
        }
    });
    c.location().allreduce(found, |a, b| a.or(b))
}

/// `p_min_element`: (GID, value) of a minimum element.
pub fn p_min_element<C, G>(c: &C) -> Option<(G, C::Value)>
where
    G: Gid,
    C: LocalIteration<G>,
    C::Value: Ord + Send + Clone,
{
    p_reduce(
        c,
        |g, v| (g, v.clone()),
        |a, b| if b.1 < a.1 { b } else { a },
    )
}

/// `p_max_element`.
pub fn p_max_element<C, G>(c: &C) -> Option<(G, C::Value)>
where
    G: Gid,
    C: LocalIteration<G>,
    C::Value: Ord + Send + Clone,
{
    p_reduce(
        c,
        |g, v| (g, v.clone()),
        |a, b| if b.1 > a.1 { b } else { a },
    )
}

/// `p_fill`: sets every element to `v`. Containers exposing contiguous
/// storage are filled one slice at a time — one clone of `v` handed to
/// `slice::fill` per chunk instead of one clone per element.
pub fn p_fill<C, G>(c: &C, v: C::Value)
where
    G: Gid,
    C: LocalIteration<G>,
    C::Value: Clone,
{
    let chunked = c.try_local_slices_mut(&mut |s: &mut [C::Value]| s.fill(v.clone()));
    if !chunked {
        c.for_each_local_mut(|_, slot| *slot = v.clone());
    }
    c.location().rmi_fence();
}

/// `p_replace_if`: chunk-at-a-time where the container exposes slices
/// (no per-element closure dispatch through the GID iteration).
pub fn p_replace_if<C, G, P>(c: &C, pred: P, with: C::Value)
where
    G: Gid,
    C: LocalIteration<G>,
    C::Value: Clone,
    P: Fn(&C::Value) -> bool,
{
    let chunked = c.try_local_slices_mut(&mut |s: &mut [C::Value]| {
        for v in s {
            if pred(v) {
                *v = with.clone();
            }
        }
    });
    if !chunked {
        c.for_each_local_mut(|_, v| {
            if pred(v) {
                *v = with.clone();
            }
        });
    }
    c.location().rmi_fence();
}

/// `p_copy`: copies `src` into `dst` chunk-at-a-time: each local run of
/// `src` is borrowed as one slice and shipped with one bulk RMI per
/// misaligned (owner, run) of `dst` — O(runs) messages where the
/// element-wise path pays O(N). Aligned distributions degenerate to pure
/// slice-to-slice copies.
///
/// `src` and `dst` must be distinct containers: copying a container onto
/// itself borrows the same representative for reading and writing and
/// panics (true of the element-wise variant as well).
pub fn p_copy<S, D>(src: &S, dst: &D)
where
    S: RangedContainer,
    D: RangedContainer<Value = S::Value>,
{
    for (bcid, piece) in src.local_pieces() {
        let served = src.with_slice(bcid, piece, |s| dst.set_range_slice(piece.lo, s));
        if served.is_none() {
            // Non-sliceable storage: still one buffer per run.
            let vals = src.get_range(piece);
            dst.set_range(piece.lo, vals);
        }
    }
    src.location().rmi_fence();
}

/// `p_copy` for containers without bulk-range transport (non-`usize`
/// GIDs: pList, pMatrix, …): one `set_element` per element.
pub fn p_copy_elementwise<S, D, G>(src: &S, dst: &D)
where
    G: Gid,
    S: LocalIteration<G>,
    D: ElementWrite<G, Value = S::Value>,
{
    src.for_each_local(|g, v| dst.set_element(g, v.clone()));
    src.location().rmi_fence();
}

/// `p_transform`: `dst[g] = f(src[g])`, chunk-at-a-time: each local run
/// of `src` is mapped through `f` into one buffer and written with one
/// bulk RMI per (owner, run) of `dst`.
pub fn p_transform<S, D, F, W>(src: &S, dst: &D, f: F)
where
    S: RangedContainer,
    D: RangedContainer<Value = W>,
    W: Send + Clone + 'static,
    F: Fn(&S::Value) -> W,
{
    for (bcid, piece) in src.local_pieces() {
        let vals = src
            .with_slice(bcid, piece, |s| s.iter().map(&f).collect::<Vec<W>>())
            .unwrap_or_else(|| src.get_range(piece).iter().map(&f).collect());
        dst.set_range(piece.lo, vals);
    }
    src.location().rmi_fence();
}

/// `p_transform` for containers without bulk-range transport.
pub fn p_transform_elementwise<S, D, G, F, W>(src: &S, dst: &D, f: F)
where
    G: Gid,
    S: LocalIteration<G>,
    D: ElementWrite<G, Value = W>,
    W: Send + Clone + 'static,
    F: Fn(&S::Value) -> W,
{
    src.for_each_local(|g, v| dst.set_element(g, f(v)));
    src.location().rmi_fence();
}

/// `p_equal`: true when both containers hold equal elements at every GID.
/// Chunk-at-a-time: each local run of `a` is compared as one slice
/// against one bulk fetch of `b`'s range, short-circuiting across runs
/// after the first mismatch.
pub fn p_equal<A, B>(a: &A, b: &B) -> bool
where
    A: RangedContainer,
    B: RangedContainer<Value = A::Value>,
    A::Value: PartialEq,
{
    let mut ok = true;
    for (bcid, piece) in a.local_pieces() {
        if !ok {
            break;
        }
        let theirs = b.get_range(piece);
        ok = a
            .with_slice(bcid, piece, |s| s == &theirs[..])
            .unwrap_or_else(|| a.get_range(piece) == theirs);
    }
    a.location().allreduce(ok, |x, y| x && y)
}

/// `p_equal` for containers without bulk-range transport.
pub fn p_equal_elementwise<A, B, G>(a: &A, b: &B) -> bool
where
    G: Gid,
    A: LocalIteration<G>,
    B: ElementWrite<G, Value = A::Value>,
    A::Value: PartialEq,
{
    let mut ok = true;
    a.try_for_each_local(|g, v| {
        if b.get_element(g) != *v {
            ok = false;
        }
        ok
    });
    a.location().allreduce(ok, |x, y| x && y)
}

/// `p_inner_product` over two u64 containers sharing GIDs, one slice /
/// bulk fetch per run.
pub fn p_inner_product<A, B>(a: &A, b: &B) -> u64
where
    A: RangedContainer<Value = u64>,
    B: RangedContainer<Value = u64>,
{
    let mut acc = 0u64;
    for (bcid, piece) in a.local_pieces() {
        let theirs = b.get_range(piece);
        let dot = |s: &[u64]| {
            s.iter()
                .zip(&theirs)
                .fold(0u64, |t, (x, y)| t.wrapping_add(x.wrapping_mul(*y)))
        };
        acc = acc.wrapping_add(
            a.with_slice(bcid, piece, dot).unwrap_or_else(|| dot(&a.get_range(piece))),
        );
    }
    a.location().allreduce_sum(acc)
}

/// `p_inner_product` for containers without bulk-range transport
/// (non-`usize` GIDs: pList, pMatrix, …).
pub fn p_inner_product_elementwise<A, B, G>(a: &A, b: &B) -> u64
where
    G: Gid,
    A: LocalIteration<G, Value = u64>,
    B: ElementWrite<G, Value = u64>,
{
    let mut acc = 0u64;
    a.for_each_local(|g, v| acc = acc.wrapping_add(v.wrapping_mul(b.get_element(g))));
    a.location().allreduce_sum(acc)
}

// ---------------------------------------------------------------------
// View-based variants
// ---------------------------------------------------------------------

/// `p_for_each` over a view: chunk-at-a-time — localized views mutate
/// their chunks through direct slice borrows (and one `apply_range` RMI
/// per remote run); unlocalized views fall back to owner-side `apply`
/// per element, exactly the old behavior.
pub fn p_for_each_view<V, F>(v: &V, f: F)
where
    V: ViewWrite,
    F: Fn(&mut V::Value) + Clone + Send + 'static,
{
    v.apply_chunks(f);
    v.location().rmi_fence();
}

/// `p_generate` over a view: values are produced per chunk and written
/// with one slice write (local) or one bulk RMI (remote) per run.
pub fn p_generate_view<V, F>(v: &V, gen: F)
where
    V: ViewWrite,
    F: Fn(usize) -> V::Value,
{
    v.fill_from(|r| r.iter().map(&gen).collect());
    v.location().rmi_fence();
}

/// Reduction over a view, folding one chunk slice at a time.
pub fn p_reduce_view<V, A, M, R>(v: &V, map: M, combine: R) -> Option<A>
where
    V: ViewRead,
    A: Send + Clone + 'static,
    M: Fn(usize, V::Value) -> A,
    R: Fn(A, A) -> A + Copy,
{
    let mut acc: Option<A> = None;
    v.for_each_chunk(|lo, s| {
        for (k, val) in s.iter().enumerate() {
            let x = map(lo + k, val.clone());
            acc = Some(match acc.take() {
                None => x,
                Some(a) => combine(a, x),
            });
        }
    });
    let partials = v.location().allgather(acc);
    partials.into_iter().flatten().reduce(combine)
}

/// `p_adjacent_difference` expressed with the overlap view (Fig. 2's
/// motivating algorithm): `dst[i] = src[i+1] - src[i]`.
pub fn p_adjacent_difference<C, D>(src: &stapl_views::array_view::OverlapView<C>, dst: &D)
where
    C: ViewRead<Value = i64>,
    D: ElementWrite<usize, Value = i64>,
{
    for wr in src.local_windows() {
        for i in wr.iter() {
            let w = src.window(i);
            dst.set_element(i, w[1] - w[0]);
        }
    }
    src.location().rmi_fence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::array::PArray;
    use stapl_containers::list::PList;
    use stapl_containers::matrix::PMatrix;
    use stapl_core::interfaces::{ElementRead, PContainer};
    use stapl_core::partition::MatrixLayout;
    use stapl_views::array_view::{ArrayView, BalancedView, OverlapView};
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn generate_for_each_accumulate_on_array() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 30, 0u64);
            p_generate(&a, |g| g as u64);
            p_for_each(&a, |v| *v += 1);
            let sum = p_sum(&a);
            assert_eq!(sum, (1..=30).sum::<u64>());
            let _ = loc;
        });
    }

    #[test]
    fn same_algorithms_work_on_plist() {
        // The genericity Fig. 40 measures: identical algorithm calls on
        // pArray and pList.
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<u64> = PList::new(loc);
            for i in 0..10 {
                l.push_anywhere(i + loc.id() as u64 * 100);
            }
            l.commit();
            p_for_each(&l, |v| *v *= 2);
            let sum = p_reduce(&l, |_, v| *v, |a, b| a + b).unwrap();
            let expect: u64 = (0..10).map(|i| i * 2).sum::<u64>()
                + (0..10).map(|i| (i + 100) * 2).sum::<u64>();
            assert_eq!(sum, expect);
        });
    }

    #[test]
    fn same_algorithms_work_on_pmatrix() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 4, MatrixLayout::RowBlocked, |r, c| (r * 4 + c) as u64);
            let max = p_max_element(&m).unwrap();
            assert_eq!(max.1, 15);
            assert_eq!(max.0, (3, 3));
            let n = p_count_if(&m, |v| *v % 2 == 0);
            assert_eq!(n, 8);
            let _ = loc;
        });
    }

    #[test]
    fn count_find_min_max() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 40, |i| (i as i64 - 20).unsigned_abs());
            assert_eq!(p_count_if(&a, |v| *v == 0), 1);
            let f = p_find_if(&a, |v| *v == 0);
            assert_eq!(f, Some(20));
            assert_eq!(p_find_if(&a, |v| *v == 999), None);
            let (g, v) = p_min_element(&a).unwrap();
            assert_eq!((g, v), (20, 0));
            let (_, vmax) = p_max_element(&a).unwrap();
            assert_eq!(vmax, 20);
            let _ = loc;
        });
    }

    #[test]
    fn fill_replace_copy_transform_equal() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 12, |i| i as u64);
            let b = PArray::new(loc, 12, 0u64);
            p_copy(&a, &b);
            assert!(p_equal(&a, &b));
            p_replace_if(&b, |v| *v < 6, 0);
            assert!(!p_equal(&a, &b));
            let c = PArray::new(loc, 12, 0u64);
            p_transform(&a, &c, |v| v * v);
            assert_eq!(c.get_element(5), 25);
            // Phase separation: without it one location's p_fill could
            // overwrite c[5] before the other's remote read arrives.
            loc.barrier();
            p_fill(&c, 7);
            assert_eq!(p_count_if(&c, |v| *v == 7), 12);
            let _ = loc;
        });
    }

    #[test]
    fn inner_product() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as u64);
            let b = PArray::from_fn(loc, 10, |_| 2u64);
            assert_eq!(p_inner_product(&a, &b), 2 * (0..10).sum::<u64>());
            let _ = loc;
        });
    }

    #[test]
    fn copy_transform_equal_across_misaligned_distributions() {
        use stapl_core::mapper::{CyclicMapper, GeneralMapper};
        use stapl_core::partition::{BlockCyclicPartition, BlockedPartition, IndexPartition};
        execute(RtsConfig::default(), 3, |loc| {
            // src block-cyclic, dst blocked with rotated placement: every
            // chunk boundary is misaligned.
            let src = PArray::with_partition(
                loc,
                Box::new(BlockCyclicPartition::new(40, 3, 4)),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
            );
            p_generate(&src, |g| g as u64 + 1);
            let blocked = BlockedPartition::new(40, 9);
            let parts = IndexPartition::num_subdomains(&blocked);
            let dst = PArray::with_partition(
                loc,
                Box::new(blocked),
                Box::new(GeneralMapper::new(
                    loc.nlocs(),
                    (0..parts).map(|b| (b + 2) % loc.nlocs()).collect(),
                )),
                0u64,
            );
            p_copy(&src, &dst);
            assert!(p_equal(&src, &dst));
            assert!(p_equal_elementwise(&src, &dst));
            for g in 0..40 {
                assert_eq!(dst.get_element(g), g as u64 + 1);
            }
            loc.barrier();
            let squared = PArray::new(loc, 40, 0u64);
            p_transform(&src, &squared, |v| v * v);
            for g in 0..40 {
                assert_eq!(squared.get_element(g), (g as u64 + 1) * (g as u64 + 1));
            }
            loc.barrier();
            assert_eq!(
                p_inner_product(&src, &dst),
                (1..=40u64).map(|x| x * x).sum::<u64>()
            );
            assert_eq!(
                p_inner_product(&src, &dst),
                p_inner_product_elementwise(&src, &dst)
            );
            // A genuine mismatch is detected.
            if loc.id() == 0 {
                dst.set_element(17, 0);
            }
            loc.rmi_fence();
            assert!(!p_equal(&src, &dst));
        });
    }

    #[test]
    fn fill_and_replace_fall_back_without_slices() {
        // pList exposes no contiguous slices: p_fill/p_replace_if take the
        // element-wise fallback and must still be correct.
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<u64> = PList::new(loc);
            for i in 0..12 {
                l.push_anywhere(i);
            }
            l.commit();
            p_fill(&l, 5);
            assert_eq!(p_count_if(&l, |v| *v == 5), 24);
            p_replace_if(&l, |v| *v == 5, 9);
            assert_eq!(p_count_if(&l, |v| *v == 9), 24);
        });
    }

    #[test]
    fn view_algorithms_match_on_localized_and_fallback_views() {
        execute(RtsConfig::default(), 3, |loc| {
            // Same computation through the localized native view and the
            // (element-fallback) balanced view must agree.
            let a = PArray::from_fn(loc, 30, |i| i as u64);
            let b = PArray::from_fn(loc, 30, |i| i as u64);
            let va = ArrayView::new(a.clone());
            let vb = BalancedView::with_parts(ArrayView::new(b.clone()), 7);
            p_for_each_view(&va, |x| *x = *x * 3 + 1);
            p_for_each_view(&vb, |x| *x = *x * 3 + 1);
            assert!(p_equal(&a, &b));
            let ra = p_reduce_view(&va, |_, x| x, |p, q| p + q);
            let rb = p_reduce_view(&vb, |_, x| x, |p, q| p + q);
            assert_eq!(ra, rb);
            loc.barrier();
            p_generate_view(&va, |k| k as u64 % 13);
            p_generate_view(&vb, |k| k as u64 % 13);
            assert!(p_equal(&a, &b));
        });
    }

    #[test]
    fn view_based_for_each_balanced() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 20, |i| i as u64);
            let v = BalancedView::new(ArrayView::new(a.clone()));
            p_for_each_view(&v, |x| *x += 100);
            assert_eq!(a.get_element(0), 100);
            assert_eq!(a.get_element(19), 119);
            let sum = p_reduce_view(&v, |_, x| x, |p, q| p + q).unwrap();
            assert_eq!(sum, (100..120).sum::<u64>());
            let _ = loc;
        });
    }

    #[test]
    fn generate_view_writes_all() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 9, 0i64);
            let v = ArrayView::new(a.clone());
            p_generate_view(&v, |k| -(k as i64));
            assert_eq!(a.get_element(8), -8);
            let _ = loc;
        });
    }

    #[test]
    fn adjacent_difference_via_overlap_view() {
        execute(RtsConfig::default(), 2, |loc| {
            let src = PArray::from_fn(loc, 10, |i| (i * i) as i64);
            let dst = PArray::new(loc, 9, 0i64);
            let ov = OverlapView::new(ArrayView::new(src), 1, 0, 1);
            assert_eq!(ov.num_windows(), 9);
            p_adjacent_difference(&ov, &dst);
            for i in 0..9 {
                // (i+1)^2 - i^2 = 2i + 1
                assert_eq!(dst.get_element(i), (2 * i + 1) as i64);
            }
            let _ = loc;
        });
    }

    #[test]
    fn reduce_on_empty_container() {
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<u64> = PList::new(loc);
            l.commit();
            assert_eq!(p_reduce(&l, |_, v| *v, |a, b| a + b), None);
            assert_eq!(p_sum(&l), 0);
            let _ = loc;
        });
    }
}
