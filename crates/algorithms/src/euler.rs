//! The Euler-tour technique (Chapter X.H, Figs. 43/44): turn a tree into
//! a linked list of directed arcs, rank the list in parallel, and derive
//! tree functions — rooting (parent), vertex depth, and subtree size —
//! from arc positions.
//!
//! Input: an *undirected* static pGraph that is a tree over dense vertex
//! descriptors `0..n` (e.g. from
//! [`fill_binary_tree`](stapl_containers::generators::fill_binary_tree)).
//!
//! Construction follows the classical recipe: arc `(u→v)` is succeeded by
//! the arc out of `v` that follows `(v→u)` in `v`'s adjacency rotation;
//! breaking the resulting cycle at the root's first arc linearizes the
//! tour. Arc ids are dense (`offset(v) + index in v's rotation`), the
//! successor array is a pArray, and ranking is the pointer-jumping
//! pAlgorithm from [`crate::list_ranking`].

use stapl_containers::array::PArray;
use stapl_containers::associative::PHashMap;
use stapl_containers::graph::PGraph;
use stapl_core::interfaces::{AssociativeContainer, ElementRead, ElementWrite, LocalIteration, PContainer};

use crate::list_ranking::{list_positions, NIL};
use crate::numeric::p_prefix_sum_i64;

/// The computed tour: arc ids, their endpoints, and tour positions.
pub struct EulerTour {
    /// Number of directed arcs (2 · #tree edges).
    pub narcs: usize,
    /// Replicated arc-id offsets: vertex `v`'s arcs are
    /// `offsets[v] .. offsets[v+1]`.
    pub offsets: Vec<usize>,
    /// Arc id → (source, target).
    pub arcs: PArray<(usize, usize)>,
    /// Arc id → position in the tour (0-based).
    pub pos: PArray<u64>,
    /// Arc (u, v) → arc id.
    pub arc_ids: PHashMap<(usize, usize), usize>,
}

/// **Collective.** Builds the Euler tour of `g` rooted at `root`.
pub fn euler_tour<VP, EP>(g: &PGraph<VP, EP>, root: usize) -> EulerTour
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    let loc = g.location().clone();
    let n = g.num_vertices();
    // 1. Replicated degree offsets (prefix over all vertex degrees).
    let local_degs: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        g.for_each_local_vertex(|vx| v.push((vx.descriptor, vx.edges.len())));
        v
    };
    let mut all_degs: Vec<(usize, usize)> = loc
        .allreduce(local_degs, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    all_degs.sort_unstable();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for (vd, d) in &all_degs {
        debug_assert_eq!(*vd, offsets.len() - 1, "vertex descriptors must be dense 0..n");
        acc += d;
        offsets.push(acc);
    }
    let narcs = acc;
    // 2. Arc table and arc-id map, filled by each arc's source owner.
    let arcs = PArray::new(&loc, narcs.max(1), (NIL, NIL));
    let arc_ids: PHashMap<(usize, usize), usize> = PHashMap::new(&loc);
    g.for_each_local_vertex(|vx| {
        for (j, e) in vx.edges.iter().enumerate() {
            let id = offsets[vx.descriptor] + j;
            arcs.set_element(id, (vx.descriptor, e.target));
            arc_ids.insert_async((vx.descriptor, e.target), id);
        }
    });
    loc.rmi_fence();
    // 3. Successor array: for local v and neighbor u at rotation slot j,
    //    succ(u→v) = offsets[v] + (j+1) mod deg(v). The assignments are
    //    keyed by the arc id of (u→v), resolved through the arc-id map
    //    with batched split-phase finds.
    let succ = PArray::new(&loc, narcs.max(1), NIL);
    let mut assignments: Vec<((usize, usize), usize)> = Vec::new();
    g.for_each_local_vertex(|vx| {
        let d = vx.edges.len();
        for (j, e) in vx.edges.iter().enumerate() {
            let s = offsets[vx.descriptor] + (j + 1) % d;
            assignments.push(((e.target, vx.descriptor), s));
        }
    });
    for chunk in assignments.chunks(128) {
        let futs: Vec<_> = chunk.iter().map(|(pair, _)| arc_ids.split_find(*pair)).collect();
        for ((pair, s), fut) in chunk.iter().zip(futs) {
            let id = fut
                .get()
                .unwrap_or_else(|| panic!("tree is not symmetric: arc {pair:?} has no reverse"));
            succ.set_element(id, *s);
        }
    }
    loc.rmi_fence();
    // 4. Break the cycle at the root's first arc: whoever owns the arc
    //    whose successor is `first_arc` cuts it.
    let first_arc = offsets[root];
    succ.for_each_local_mut(|_, s| {
        if *s == first_arc {
            *s = NIL;
        }
    });
    loc.barrier();
    // 5. Rank the list.
    let pos = list_positions(&succ, narcs);
    EulerTour { narcs, offsets, arcs, pos, arc_ids }
}

/// Tree functions derived from the tour (the "applications" of Fig. 44).
pub struct EulerApps {
    /// Parent of each vertex (`root`'s parent is itself).
    pub parent: PArray<usize>,
    /// Depth of each vertex (root = 0).
    pub depth: PArray<i64>,
    /// Subtree size of each vertex.
    pub subtree: PArray<u64>,
}

/// **Collective.** Rooting, depth, and subtree size from an Euler tour.
pub fn euler_applications<VP, EP>(g: &PGraph<VP, EP>, root: usize) -> EulerApps
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    let loc = g.location().clone();
    let n = g.num_vertices();
    let tour = euler_tour(g, root);
    // Rooting: v's parent is the neighbor u whose arc (u→v) precedes
    // (v→u) in the tour.
    let parent = PArray::new(&loc, n, usize::MAX);
    parent.set_element(root, root);
    let mut queries: Vec<(usize, usize, usize, usize)> = Vec::new(); // (v, u, id_vu, j)
    g.for_each_local_vertex(|vx| {
        if vx.descriptor == root {
            return;
        }
        for (j, e) in vx.edges.iter().enumerate() {
            queries.push((vx.descriptor, e.target, tour.offsets[vx.descriptor] + j, j));
        }
    });
    for chunk in queries.chunks(128) {
        // pos(v→u) is derivable locally via the arc id; pos(u→v) needs
        // the reverse arc id, then its position.
        let rev_futs: Vec<_> =
            chunk.iter().map(|(v, u, _, _)| tour.arc_ids.split_find((*u, *v))).collect();
        let rev_ids: Vec<usize> = rev_futs.into_iter().map(|f| f.get().expect("reverse arc")).collect();
        let pos_futs: Vec<_> = chunk
            .iter()
            .zip(&rev_ids)
            .map(|((_, _, id_vu, _), rid)| {
                (tour.pos.split_get_element(*id_vu), tour.pos.split_get_element(*rid))
            })
            .collect();
        for (((v, u, _, _), _rid), (f_vu, f_uv)) in chunk.iter().zip(&rev_ids).zip(pos_futs) {
            let p_vu = f_vu.get();
            let p_uv = f_uv.get();
            if p_uv < p_vu {
                // u's arc into v comes first: u is v's parent.
                parent.set_element(*v, *u);
            }
        }
    }
    loc.rmi_fence();
    // Depth: weight each arc +1 (down: parent→child) or -1 (up), scatter
    // by tour position, prefix-sum, then read at pos(parent→v).
    let weights = PArray::new(&loc, tour.narcs.max(1), 0i64);
    let mut arc_list: Vec<(usize, (usize, usize))> = Vec::new();
    tour.arcs.for_each_local(|id, uv| arc_list.push((id, *uv)));
    for chunk in arc_list.chunks(128) {
        let par_futs: Vec<_> =
            chunk.iter().map(|(_, (_, v))| parent.split_get_element(*v)).collect();
        let pos_futs: Vec<_> = chunk.iter().map(|(id, _)| tour.pos.split_get_element(*id)).collect();
        for (((_, (u, _v)), pf), posf) in chunk.iter().zip(par_futs).zip(pos_futs) {
            let par_v = pf.get();
            let p = posf.get();
            let w = if par_v == *u { 1 } else { -1 };
            weights.set_element(p as usize, w);
        }
    }
    loc.rmi_fence();
    p_prefix_sum_i64(&weights);
    let depth = PArray::new(&loc, n, 0i64);
    let subtree = PArray::new(&loc, n, 0u64);
    subtree.set_element(root, n as u64);
    let mut vverts: Vec<usize> = Vec::new();
    g.for_each_local_vertex(|vx| {
        if vx.descriptor != root {
            vverts.push(vx.descriptor);
        }
    });
    for chunk in vverts.chunks(64) {
        let par: Vec<usize> = chunk
            .iter()
            .map(|v| parent.split_get_element(*v))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|f| f.get())
            .collect();
        for (v, p) in chunk.iter().zip(par) {
            let id_down = tour.arc_ids.find((p, *v)).expect("down arc");
            let id_up = tour.arc_ids.find((*v, p)).expect("up arc");
            let pos_down = tour.pos.get_element(id_down);
            let pos_up = tour.pos.get_element(id_up);
            let d = weights.get_element(pos_down as usize);
            depth.set_element(*v, d);
            subtree.set_element(*v, (pos_up - pos_down).div_ceil(2));
        }
    }
    loc.rmi_fence();
    EulerApps { parent, depth, subtree }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::generators::fill_binary_tree;
    use stapl_containers::graph::{Directedness, PGraph};
    use stapl_rts::{execute, RtsConfig};

    fn tree(loc: &stapl_rts::Location, n: usize) -> PGraph<(), ()> {
        let g = PGraph::new_static(loc, n, Directedness::Undirected, ());
        fill_binary_tree(loc, &g, ());
        g
    }

    #[test]
    fn tour_visits_every_arc_once() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = tree(loc, 7);
            let t = euler_tour(&g, 0);
            assert_eq!(t.narcs, 2 * 6);
            // Positions are a permutation of 0..narcs.
            let mut seen = vec![false; t.narcs];
            let mut local_pos = Vec::new();
            t.pos.for_each_local(|_, p| local_pos.push(*p));
            let all = loc.allreduce(local_pos, |mut a, mut b| {
                a.append(&mut b);
                a
            });
            for p in all {
                assert!(!seen[p as usize], "position {p} repeated");
                seen[p as usize] = true;
            }
            assert!(seen.iter().all(|&x| x));
            // The tour starts at the root's first arc.
            assert_eq!(t.pos.get_element(t.offsets[0]), 0);
        });
    }

    #[test]
    fn parents_match_binary_tree() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = tree(loc, 15);
            let apps = euler_applications(&g, 0);
            for v in 1..15 {
                assert_eq!(apps.parent.get_element(v), (v - 1) / 2, "parent of {v}");
            }
            assert_eq!(apps.parent.get_element(0), 0);
        });
    }

    #[test]
    fn depths_match_binary_tree() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = tree(loc, 15);
            let apps = euler_applications(&g, 0);
            for v in 0..15usize {
                let expect = (usize::BITS - (v + 1).leading_zeros() - 1) as i64;
                assert_eq!(apps.depth.get_element(v), expect, "depth of {v}");
            }
            let _ = loc;
        });
    }

    #[test]
    fn subtree_sizes_match_binary_tree() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = tree(loc, 15);
            let apps = euler_applications(&g, 0);
            // Perfect binary tree of 15: leaves have size 1, internal 3 / 7 / 15.
            assert_eq!(apps.subtree.get_element(0), 15);
            assert_eq!(apps.subtree.get_element(1), 7);
            assert_eq!(apps.subtree.get_element(2), 7);
            assert_eq!(apps.subtree.get_element(3), 3);
            assert_eq!(apps.subtree.get_element(7), 1);
            assert_eq!(apps.subtree.get_element(14), 1);
            let _ = loc;
        });
    }

    #[test]
    fn works_with_non_root_zero() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = tree(loc, 7);
            let apps = euler_applications(&g, 3);
            // Rooted at 3: parent(1) = 3, parent(0) = 1, parent(2) = 0.
            assert_eq!(apps.parent.get_element(3), 3);
            assert_eq!(apps.parent.get_element(1), 3);
            assert_eq!(apps.parent.get_element(0), 1);
            assert_eq!(apps.parent.get_element(2), 0);
            assert_eq!(apps.depth.get_element(2), 3);
            assert_eq!(apps.subtree.get_element(3), 7);
            let _ = loc;
        });
    }
}
