//! pGraph algorithms (Chapter XI.F): find-sources, level-synchronous
//! traversal (BFS), connected components, and PageRank (Fig. 56).
//!
//! All algorithms run on `PGraph<VProps, ()>` and keep their working
//! state in the vertex property, so every relaxation is routed through
//! the graph's address-resolution strategy — that is what makes the
//! static / dynamic-forwarding / dynamic-two-phase comparison of Fig. 51
//! measurable.

use stapl_containers::graph::{PGraph, VertexDesc};
use stapl_core::interfaces::PContainer;

/// Working vertex properties shared by the algorithms.
#[derive(Clone, Debug)]
pub struct VProps {
    /// In-degree counter (find_sources).
    pub indeg: u32,
    /// BFS level; -1 = undiscovered.
    pub level: i64,
    /// Connected-component label.
    pub comp: u64,
    /// PageRank value and incoming accumulator.
    pub rank: f64,
    pub acc: f64,
}

impl Default for VProps {
    fn default() -> Self {
        VProps { indeg: 0, level: -1, comp: u64::MAX, rank: 0.0, acc: 0.0 }
    }
}

/// The graph type the algorithms operate on.
pub type AlgoGraph = PGraph<VProps, ()>;

/// **Collective.** Vertices with no incoming edges (Fig. 51's kernel),
/// sorted. Phase 1 counts in-degrees by routing an increment to every
/// edge target; phase 2 scans locally.
pub fn find_sources(g: &AlgoGraph) -> Vec<VertexDesc> {
    let loc = g.location().clone();
    g.for_each_local_vertex_mut(|v| v.property.indeg = 0);
    loc.barrier();
    // Collect targets first: apply_vertex on a local target needs the
    // representative borrow that for_each_local_vertex would be holding.
    let mut targets: Vec<VertexDesc> = Vec::new();
    g.for_each_local_vertex(|v| targets.extend(v.edges.iter().map(|e| e.target)));
    for t in targets {
        g.apply_vertex(t, |tv| tv.property.indeg += 1);
    }
    loc.rmi_fence();
    let mut local_sources: Vec<VertexDesc> = Vec::new();
    g.for_each_local_vertex(|v| {
        if v.property.indeg == 0 {
            local_sources.push(v.descriptor);
        }
    });
    let mut all = loc.allreduce(local_sources, |mut a, mut b| {
        a.append(&mut b);
        a
    });
    all.sort_unstable();
    all
}

/// **Collective.** Level-synchronous breadth-first traversal from `root`.
/// Returns (number of reached vertices, number of levels).
pub fn bfs(g: &AlgoGraph, root: VertexDesc) -> (usize, usize) {
    let loc = g.location().clone();
    g.for_each_local_vertex_mut(|v| v.property.level = -1);
    loc.barrier();
    g.apply_vertex(root, |v| v.property.level = 0);
    loc.rmi_fence();
    let mut round: i64 = 0;
    loop {
        // Edges out of this round's frontier.
        let mut targets: Vec<VertexDesc> = Vec::new();
        g.for_each_local_vertex(|v| {
            if v.property.level == round {
                targets.extend(v.edges.iter().map(|e| e.target));
            }
        });
        let next = round + 1;
        for t in targets {
            g.apply_vertex(t, move |tv| {
                if tv.property.level < 0 {
                    tv.property.level = next;
                }
            });
        }
        loc.rmi_fence();
        let mut discovered = 0u64;
        g.for_each_local_vertex(|v| {
            if v.property.level == next {
                discovered += 1;
            }
        });
        if loc.allreduce_sum(discovered) == 0 {
            break;
        }
        round += 1;
    }
    let mut reached = 0u64;
    g.for_each_local_vertex(|v| {
        if v.property.level >= 0 {
            reached += 1;
        }
    });
    (loc.allreduce_sum(reached) as usize, (round + 1) as usize)
}

/// BFS level of a vertex after [`bfs`] (synchronous; -1 = unreached).
pub fn bfs_level(g: &AlgoGraph, vd: VertexDesc) -> i64 {
    g.apply_vertex_ret(vd, |v| v.property.level)
}

/// **Collective.** Connected components by min-label propagation (use on
/// undirected graphs). Returns the number of components.
pub fn connected_components(g: &AlgoGraph) -> usize {
    let loc = g.location().clone();
    g.for_each_local_vertex_mut(|v| v.property.comp = v.descriptor as u64);
    loc.barrier();
    loop {
        // Push my label to every neighbor; keep the minimum.
        let mut pushes: Vec<(VertexDesc, u64)> = Vec::new();
        g.for_each_local_vertex(|v| {
            for e in &v.edges {
                pushes.push((e.target, v.property.comp));
            }
        });
        for (t, label) in pushes {
            g.apply_vertex(t, move |tv| {
                if label < tv.property.comp {
                    tv.property.comp = label;
                }
            });
        }
        loc.rmi_fence();
        // Converged when no label changed this round; the previous round's
        // labels are kept in the `acc` scratch field.
        let mut changed = 0u64;
        g.for_each_local_vertex(|v| {
            if v.property.acc != v.property.comp as f64 {
                changed += 1;
            }
        });
        g.for_each_local_vertex_mut(|v| v.property.acc = v.property.comp as f64);
        if loc.allreduce_sum(changed) == 0 {
            break;
        }
    }
    // Count distinct labels.
    let mut labels: Vec<u64> = Vec::new();
    g.for_each_local_vertex(|v| {
        if v.property.comp == v.descriptor as u64 {
            labels.push(v.property.comp);
        }
    });
    loc.allreduce_sum(labels.len() as u64) as usize
}

/// **Collective.** PageRank with damping `d` for `iters` iterations
/// (Fig. 56's kernel). Returns the global rank sum (≈ 1.0) for sanity.
pub fn page_rank(g: &AlgoGraph, iters: usize, d: f64) -> f64 {
    let loc = g.location().clone();
    let n = g.num_vertices() as f64;
    g.for_each_local_vertex_mut(|v| {
        v.property.rank = 1.0 / n;
        v.property.acc = 0.0;
    });
    loc.barrier();
    for _ in 0..iters {
        // Push contributions along out-edges; dangling mass is gathered
        // and spread uniformly.
        let mut pushes: Vec<(VertexDesc, f64)> = Vec::new();
        let mut dangling = 0.0f64;
        g.for_each_local_vertex(|v| {
            if v.edges.is_empty() {
                dangling += v.property.rank;
            } else {
                let share = v.property.rank / v.edges.len() as f64;
                for e in &v.edges {
                    pushes.push((e.target, share));
                }
            }
        });
        for (t, share) in pushes {
            g.apply_vertex(t, move |tv| tv.property.acc += share);
        }
        let dangling_total = loc.allreduce(dangling, |a, b| a + b);
        loc.rmi_fence();
        g.for_each_local_vertex_mut(|v| {
            v.property.rank = (1.0 - d) / n + d * (v.property.acc + dangling_total / n);
            v.property.acc = 0.0;
        });
        loc.barrier();
    }
    let mut local = 0.0;
    g.for_each_local_vertex(|v| local += v.property.rank);
    loc.allreduce(local, |a, b| a + b)
}

/// Rank of one vertex after [`page_rank`] (synchronous).
pub fn rank_of(g: &AlgoGraph, vd: VertexDesc) -> f64 {
    g.apply_vertex_ret(vd, |v| v.property.rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::generators::{
        fill_dag_with_sources, fill_mesh, fill_ssca2, Ssca2Params,
    };
    use stapl_containers::graph::{Directedness, GraphPartitionKind};
    use stapl_rts::{execute, RtsConfig};

    fn algo_graph(loc: &stapl_rts::Location, n: usize) -> AlgoGraph {
        PGraph::new_static(loc, n, Directedness::Directed, VProps::default())
    }

    #[test]
    fn find_sources_on_known_dag() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 6);
            // 0 -> 2 -> 4, 1 -> 2, 3 -> 4, 5 isolated. Sources: 0, 1, 3, 5.
            if loc.id() == 0 {
                g.add_edge_async(0, 2, ());
                g.add_edge_async(1, 2, ());
                g.add_edge_async(2, 4, ());
                g.add_edge_async(3, 4, ());
            }
            g.commit();
            assert_eq!(find_sources(&g), vec![0, 1, 3, 5]);
        });
    }

    #[test]
    fn find_sources_matches_generator_band() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 40);
            fill_dag_with_sources(loc, &g, 3, 0.25, 7, ());
            let sources = find_sources(&g);
            // The first 10 vertices are the source band; all of them have
            // no in-edges (some later vertices may also be sources).
            for v in 0..10 {
                assert!(sources.contains(&v), "band vertex {v} must be a source");
            }
        });
    }

    #[test]
    fn find_sources_same_result_across_partitions() {
        // Fig. 51: three partitions, same answer.
        let run = |kind: Option<GraphPartitionKind>| {
            stapl_rts::execute_collect(RtsConfig::default(), 2, |loc| {
                let g = match kind {
                    None => algo_graph(loc, 24),
                    Some(k) => {
                        let g: AlgoGraph = PGraph::new_dynamic(loc, Directedness::Directed, k);
                        let per = 12;
                        for vd in loc.id() * per..(loc.id() + 1) * per {
                            g.add_vertex_with_descriptor(vd, VProps::default());
                        }
                        g.commit();
                        g
                    }
                };
                fill_dag_with_sources(loc, &g, 2, 0.3, 3, ());
                find_sources(&g)
            })
            .remove(0)
        };
        let s_static = run(None);
        let s_fwd = run(Some(GraphPartitionKind::DynamicFwd));
        let s_two = run(Some(GraphPartitionKind::DynamicTwoPhase));
        assert_eq!(s_static, s_fwd);
        assert_eq!(s_static, s_two);
        assert!(!s_static.is_empty());
    }

    #[test]
    fn bfs_levels_on_mesh_are_manhattan() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 12); // 3x4 mesh
            fill_mesh(loc, &g, 3, 4, ());
            let (reached, levels) = bfs(&g, 0);
            assert_eq!(reached, 12);
            assert_eq!(levels, 6); // max manhattan distance = (3-1)+(4-1) = 5 → 6 levels
            assert_eq!(bfs_level(&g, 0), 0);
            assert_eq!(bfs_level(&g, 5), 2); // (1,1)
            assert_eq!(bfs_level(&g, 11), 5); // (2,3)
        });
    }

    #[test]
    fn bfs_unreachable_vertices_stay_unmarked() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 4);
            if loc.id() == 0 {
                g.add_edge_async(0, 1, ());
            }
            g.commit();
            let (reached, _) = bfs(&g, 0);
            assert_eq!(reached, 2);
            assert_eq!(bfs_level(&g, 3), -1);
        });
    }

    #[test]
    fn connected_components_counts_clusters() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: AlgoGraph =
                PGraph::new_static(loc, 9, Directedness::Undirected, VProps::default());
            // Components: {0,1,2}, {3,4}, {5}, {6,7,8}.
            if loc.id() == 0 {
                g.add_edge_async(0, 1, ());
                g.add_edge_async(1, 2, ());
                g.add_edge_async(3, 4, ());
                g.add_edge_async(6, 7, ());
                g.add_edge_async(7, 8, ());
            }
            g.commit();
            assert_eq!(connected_components(&g), 4);
        });
    }

    #[test]
    fn pagerank_sums_to_one_and_is_uniform_on_symmetric_graph() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 8);
            // Ring: fully symmetric → uniform stationary distribution.
            for v in g.local_vertices() {
                g.add_edge_async(v, (v + 1) % 8, ());
                g.add_edge_async(v, (v + 7) % 8, ());
            }
            g.commit();
            let total = page_rank(&g, 20, 0.85);
            assert!((total - 1.0).abs() < 1e-9, "rank mass must be conserved: {total}");
            let r0 = rank_of(&g, 0);
            for v in 1..8 {
                assert!((rank_of(&g, v) - r0).abs() < 1e-9);
            }
        });
    }

    #[test]
    fn pagerank_favors_high_in_degree() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 6);
            // Everyone points at vertex 0; 0 points at 1.
            for v in g.local_vertices() {
                if v != 0 {
                    g.add_edge_async(v, 0, ());
                }
            }
            if loc.id() == 0 {
                g.add_edge_async(0, 1, ());
            }
            g.commit();
            page_rank(&g, 30, 0.85);
            let r0 = rank_of(&g, 0);
            for v in 2..6 {
                assert!(r0 > rank_of(&g, v) * 2.0);
            }
        });
    }

    #[test]
    fn bfs_on_ssca2_reaches_cliques() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = algo_graph(loc, 32);
            let p = Ssca2Params { n: 32, max_clique_size: 4, inter_clique_prob: 1.0, seed: 5 };
            fill_ssca2(loc, &g, &p, ());
            let (reached, _) = bfs(&g, 0);
            // Cliques chained by inter-clique edges with p=1.0: everything
            // reachable from vertex 0's clique onward.
            assert!(reached >= 31, "reached only {reached}");
        });
    }
}
