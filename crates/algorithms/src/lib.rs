//! # stapl-algorithms — the pAlgorithms library
//!
//! Parallel algorithms written against container interfaces and pViews,
//! reproducing the paper's algorithm suite:
//!
//! * [`map_func`] — STL counterparts (`p_generate`, `p_for_each`,
//!   `p_accumulate`, `p_count_if`, `p_find_if`, `p_min_element`,
//!   `p_copy`, `p_transform`, ...), container-native and view-based;
//! * [`numeric`] — parallel prefix sums (`p_partial_sum`);
//! * [`sorting`] — sample sort (`p_sort`);
//! * [`list_ranking`] — Wyllie pointer jumping;
//! * [`euler`] — the Euler-tour technique and its applications
//!   (rooting, depth, subtree size);
//! * [`graph_algos`] — find-sources, BFS, connected components, PageRank;
//! * [`segmented`] — segment-at-a-time algorithms for the dynamic
//!   containers (`p_copy_segmented`, `p_equal_segmented`,
//!   `p_reduce_segmented`): one RMI per (owner, base-container segment)
//!   where the `_elementwise` fallbacks pay one per element;
//! * [`mapreduce`] — MapReduce with owner-side combining + word count,
//!   including the bucket-grained `p_map_reduce_kv` over `MapView`;
//! * [`paragraph_algos`] — the `_pg` entry points: the same algorithms
//!   scheduled through the PARAGRAPH task-graph executor
//!   (`stapl-paragraph`), with optional work stealing for skewed
//!   workloads.

pub mod euler;
pub mod graph_algos;
pub mod list_ranking;
pub mod map_func;
pub mod mapreduce;
pub mod numeric;
pub mod paragraph_algos;
pub mod segmented;
pub mod sorting;

pub mod prelude {
    pub use crate::euler::{euler_applications, euler_tour, EulerApps, EulerTour};
    pub use crate::graph_algos::{
        bfs, bfs_level, connected_components, find_sources, page_rank, rank_of, AlgoGraph, VProps,
    };
    pub use crate::list_ranking::{list_positions, list_rank_after, NIL};
    pub use crate::map_func::{
        p_accumulate, p_adjacent_difference, p_copy, p_copy_elementwise, p_count_if, p_equal,
        p_equal_elementwise, p_fill, p_find_if, p_for_each, p_for_each_view, p_generate,
        p_generate_view, p_inner_product, p_inner_product_elementwise, p_max_element,
        p_min_element, p_reduce, p_reduce_view, p_replace_if, p_sum, p_transform,
        p_transform_elementwise,
    };
    pub use crate::mapreduce::{
        map_reduce, p_map_reduce_kv, synthetic_corpus, word_count, word_count_kv,
    };
    pub use crate::numeric::{p_partial_sum, p_prefix_sum_i64, p_prefix_sum_u64};
    pub use crate::paragraph_algos::{
        map_reduce_pg, p_for_each_pg, p_generate_pg, p_reduce_pg,
    };
    pub use crate::segmented::{p_copy_segmented, p_equal_segmented, p_reduce_segmented};
    pub use crate::sorting::{p_is_sorted, p_sort};
}
