//! pAlgorithms ported onto the PARAGRAPH executor: the `_pg` entry
//! points.
//!
//! Each `_pg` function is semantically identical to its SPMD counterpart
//! in [`map_func`](crate::map_func) / [`mapreduce`](crate::mapreduce) but
//! executes through a [`PRange`] task graph scheduled by the
//! per-location [`Executor`] — so skewed or irregular workloads can be
//! rebalanced by work stealing instead of idling entire locations at the
//! closing fence. The SPMD versions remain the fast path for regular
//! workloads (no per-task scheduling overhead); pick `_pg` when the
//! per-element cost varies or is dominated by latency.
//!
//! Reductions fold payloads in arrival order, so `combine` must be
//! **commutative** as well as associative (the same requirement the RTS
//! collectives already impose in practice).

use std::cell::RefCell;

use stapl_containers::associative::PHashMap;
use stapl_core::domain::Range1d;
use stapl_core::gid::Key;
use stapl_core::interfaces::PContainer;
use stapl_paragraph::executor::{ExecPolicy, Executor};
use stapl_paragraph::prange::{map_task_graph, reduce_task_graph, PRange, TaskKind};
use stapl_views::view::{ViewRead, ViewWrite};

/// `p_for_each` on the executor: applies `f` at the owner of every
/// element of the view, scheduling coarsened tasks instead of lock-step
/// chunks. **Collective.**
pub fn p_for_each_pg<V, F>(v: &V, policy: ExecPolicy, f: F)
where
    V: ViewWrite,
    F: Fn(&mut V::Value) + Clone + Send + 'static,
{
    let loc = v.location().clone();
    let pr = map_task_graph(v, policy.grain_for(v.len(), loc.nlocs()));
    Executor::new(&pr, policy).run::<(), _>(&loc, |task, _| {
        for k in task.range.iter() {
            v.apply(k, f.clone());
        }
        None
    });
}

/// `p_generate` on the executor: assigns `gen(k)` to every view index.
/// The generator runs on whichever location executes the task (stolen
/// tasks compute at the thief), and the write routes to the owner.
/// **Collective.**
pub fn p_generate_pg<V, F>(v: &V, policy: ExecPolicy, gen: F)
where
    V: ViewWrite,
    F: Fn(usize) -> V::Value,
{
    let loc = v.location().clone();
    let pr = map_task_graph(v, policy.grain_for(v.len(), loc.nlocs()));
    Executor::new(&pr, policy).run::<(), _>(&loc, |task, _| {
        for k in task.range.iter() {
            v.set(k, gen(k));
        }
        None
    });
}

/// `p_reduce` on the executor: a [`reduce_task_graph`] whose leaf tasks
/// fold their range, per-location combine tasks fold the leaf payloads
/// flowing along the dependence edges, and the root task (location 0)
/// folds the combines; the result is broadcast to every location.
/// `combine` must be commutative and associative. **Collective.**
pub fn p_reduce_pg<V, A, M, R>(v: &V, policy: ExecPolicy, map: M, combine: R) -> Option<A>
where
    V: ViewRead,
    A: Send + Clone + 'static,
    M: Fn(usize, V::Value) -> A,
    R: Fn(A, A) -> A + Copy,
{
    let loc = v.location().clone();
    let pr = reduce_task_graph(v, policy.grain_for(v.len(), loc.nlocs()));
    let root_out: RefCell<Option<A>> = RefCell::new(None);
    Executor::new(&pr, policy).run::<A, _>(&loc, |task, inputs| match task.kind {
        TaskKind::Map => {
            let mut acc: Option<A> = None;
            for k in task.range.iter() {
                let x = map(k, v.get(k));
                acc = Some(match acc.take() {
                    None => x,
                    Some(a) => combine(a, x),
                });
            }
            acc
        }
        TaskKind::Combine => inputs.into_iter().reduce(combine),
        TaskKind::Root => {
            let r = inputs.into_iter().reduce(combine);
            *root_out.borrow_mut() = r.clone();
            r
        }
        TaskKind::Stage(_) => None,
    });
    loc.broadcast(0, root_out.into_inner())
}

/// MapReduce on the executor (compare
/// [`map_reduce`](crate::mapreduce::map_reduce)): every location's
/// `inputs` slice is coarsened into non-migratable local tasks (the
/// input shard is location-private data), and the map phase's emitted
/// pairs combine at the key's owner while later tasks are still
/// running — the executor overlaps the map with the shuffle.
/// **Collective.**
pub fn map_reduce_pg<I, K, V, M, C>(
    out: &PHashMap<K, V>,
    inputs: &[I],
    map: M,
    identity: V,
    combine: C,
    policy: ExecPolicy,
) where
    K: Key + std::hash::Hash,
    V: Send + Clone + 'static,
    M: Fn(&I, &mut dyn FnMut(K, V)),
    C: Fn(&mut V, V) + Send + Clone + 'static,
{
    let loc = out.location().clone();
    let me = loc.id();
    // Shard sizes differ per location; allgather them so the replicated
    // graph is identical everywhere. Task ranges index into the *local*
    // shard of their home location.
    let sizes = loc.allgather(inputs.len());
    let mut pr = PRange::new();
    for (home, &n) in sizes.iter().enumerate() {
        let grain = policy.grain_for(n, 1).max(1);
        let mut lo = 0;
        while lo < n {
            let hi = (lo + grain).min(n);
            pr.add_task(Range1d::new(lo, hi), home, false, TaskKind::Map);
            lo = hi;
        }
    }
    Executor::new(&pr, policy).run::<(), _>(&loc, |task, _| {
        debug_assert_eq!(task.home, me, "map tasks are pinned to their shard's location");
        for i in task.range.iter() {
            map(&inputs[i], &mut |k, v| {
                let c = combine.clone();
                out.apply_or_insert(k, identity.clone(), move |slot| c(slot, v));
            });
        }
        None
    });
    out.commit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_func::{p_for_each_view, p_generate_view, p_reduce_view};
    use crate::mapreduce::{map_reduce, synthetic_corpus};
    use stapl_containers::array::PArray;
    use stapl_containers::matrix::PMatrix;
    use stapl_containers::vector::PVector;
    use stapl_core::interfaces::{AssociativeContainer, ElementRead};
    use stapl_core::partition::MatrixLayout;
    use stapl_rts::{execute, RtsConfig};
    use stapl_views::array_view::{ArrayView, BalancedView};
    use stapl_views::matrix_view::LinearView;

    /// The equivalence the acceptance criteria demand: `_pg` entry points
    /// must produce results identical to their SPMD counterparts, with
    /// and without stealing.
    #[test]
    fn for_each_pg_matches_spmd_on_parray() {
        for policy in [ExecPolicy::default(), ExecPolicy::no_stealing()] {
            execute(RtsConfig::default(), 3, |loc| {
                let spmd = PArray::from_fn(loc, 41, |i| i as u64);
                let pg = PArray::from_fn(loc, 41, |i| i as u64);
                p_for_each_view(&ArrayView::new(spmd.clone()), |x| *x = *x * 3 + 1);
                p_for_each_pg(&ArrayView::new(pg.clone()), policy, |x| *x = *x * 3 + 1);
                for i in 0..41 {
                    assert_eq!(spmd.get_element(i), pg.get_element(i));
                }
                let _ = loc;
            });
        }
    }

    #[test]
    fn for_each_pg_matches_spmd_on_pvector_and_balanced_view() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 23, |i| i as u64);
            p_for_each_pg(&BalancedView::new(ArrayView::new(v.clone())), ExecPolicy::default(), |x| {
                *x += 100;
            });
            for i in 0..23 {
                assert_eq!(v.get_element(i), i as u64 + 100);
            }
        });
    }

    #[test]
    fn generate_pg_matches_spmd() {
        execute(RtsConfig::default(), 3, |loc| {
            let spmd = PArray::new(loc, 31, 0i64);
            let pg = PArray::new(loc, 31, 0i64);
            p_generate_view(&ArrayView::new(spmd.clone()), |k| -(k as i64) * 5);
            p_generate_pg(&ArrayView::new(pg.clone()), ExecPolicy::default(), |k| -(k as i64) * 5);
            for i in 0..31 {
                assert_eq!(spmd.get_element(i), pg.get_element(i));
            }
            let _ = loc;
        });
    }

    #[test]
    fn reduce_pg_matches_spmd_on_array_vector_matrix() {
        for policy in [ExecPolicy::default(), ExecPolicy::no_stealing().with_grain(3)] {
            execute(RtsConfig::default(), 3, |loc| {
                let a = PArray::from_fn(loc, 37, |i| i as u64);
                let av = ArrayView::new(a);
                assert_eq!(
                    p_reduce_pg(&av, policy, |_, x| x, |p, q| p + q),
                    p_reduce_view(&av, |_, x| x, |p, q| p + q),
                );

                let v = PVector::from_fn(loc, 19, |i| i as u64 * 2);
                let vv = ArrayView::new(v);
                assert_eq!(
                    p_reduce_pg(&vv, policy, |_, x| x, u64::max),
                    p_reduce_view(&vv, |_, x| x, u64::max),
                );

                let m = PMatrix::from_fn(loc, 4, 5, MatrixLayout::RowBlocked, |r, c| {
                    (r * 5 + c) as u64
                });
                let mv = LinearView::new(m);
                assert_eq!(
                    p_reduce_pg(&mv, policy, |_, x| x, |p, q| p + q),
                    p_reduce_view(&mv, |_, x| x, |p, q| p + q),
                );
                let _ = loc;
            });
        }
    }

    #[test]
    fn reduce_pg_empty_view_is_none() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 0, 0u64);
            let av = ArrayView::new(a);
            assert_eq!(p_reduce_pg(&av, ExecPolicy::default(), |_, x| x, |p, q| p + q), None);
            let _ = loc;
        });
    }

    #[test]
    fn map_reduce_pg_matches_spmd_word_count() {
        execute(RtsConfig::default(), 3, |loc| {
            let text = synthetic_corpus(loc, 400, 30, 11);
            let words: Vec<&str> = text.split_whitespace().collect();

            let spmd: PHashMap<String, u64> = PHashMap::new(loc);
            map_reduce(&spmd, words.iter().copied(), |w, emit| emit(w.to_string(), 1), 0, |a, v| {
                *a += v
            });

            let pg: PHashMap<String, u64> = PHashMap::new(loc);
            map_reduce_pg(
                &pg,
                &words,
                |w, emit| emit(w.to_string(), 1),
                0,
                |a, v| *a += v,
                ExecPolicy::default(),
            );

            assert_eq!(spmd.global_size(), pg.global_size());
            let mut mismatch = 0u64;
            spmd.for_each_local(|k, c| {
                if pg.find(k.clone()) != Some(*c) {
                    mismatch += 1;
                }
            });
            assert_eq!(loc.allreduce_sum(mismatch), 0, "word counts must agree");
        });
    }
}
