//! Parallel list ranking by pointer jumping (Wyllie's algorithm) — the
//! engine under the Euler-tour technique (Chapter X.H).
//!
//! The list is represented as a successor pArray: `succ[i]` is the index
//! of the element after `i`, or [`NIL`] for the last element. Each of the
//! ⌈log₂ n⌉ rounds doubles the pointers: `rank[i] += rank[succ[i]]`,
//! `succ[i] = succ[succ[i]]`, with the remote reads issued as *batched
//! split-phase* gets — the communication/computation overlap the paper's
//! split-phase methods exist for.

use stapl_containers::array::PArray;
use stapl_core::interfaces::{ElementRead, ElementWrite, LocalIteration, PContainer};

/// End-of-list marker.
pub const NIL: usize = usize::MAX;

/// **Collective.** Computes, for every element, the number of elements
/// *after* it in its list. `succ` is not modified.
pub fn list_rank_after(succ: &PArray<usize>) -> PArray<u64> {
    let loc = succ.location().clone();
    let n = succ.global_size();
    // Working copies (double-buffered).
    let ws = PArray::new(&loc, n, NIL);
    let wr = PArray::new(&loc, n, 0u64);
    let next_s = PArray::new(&loc, n, NIL);
    let next_r = PArray::new(&loc, n, 0u64);
    succ.for_each_local(|i, s| {
        ws.set_element(i, *s); // aligned: local write
        wr.set_element(i, u64::from(*s != NIL));
    });
    loc.barrier();
    let mut cur = (ws, wr);
    let mut nxt = (next_s, next_r);
    let rounds = usize::BITS - n.max(2).leading_zeros();
    for _ in 0..=rounds {
        // Read phase: batched split-phase reads of the successor's
        // (succ, rank).
        let mut items: Vec<(usize, usize, u64)> = Vec::new(); // (i, s, r)
        cur.0.for_each_local(|i, s| {
            let r = cur.1.get_element(i); // aligned local read
            items.push((i, *s, r));
        });
        const BATCH: usize = 128;
        for chunk in items.chunks(BATCH) {
            let futs: Vec<_> = chunk
                .iter()
                .map(|(_, s, _)| {
                    if *s == NIL {
                        None
                    } else {
                        Some((cur.0.split_get_element(*s), cur.1.split_get_element(*s)))
                    }
                })
                .collect();
            for ((i, s, r), fut) in chunk.iter().zip(futs) {
                match fut {
                    None => {
                        nxt.0.set_element(*i, *s);
                        nxt.1.set_element(*i, *r);
                    }
                    Some((fs, fr)) => {
                        let ss = fs.get();
                        let rs = fr.get();
                        nxt.0.set_element(*i, ss);
                        nxt.1.set_element(*i, r + rs);
                    }
                }
            }
        }
        // Everyone finished reading `cur` and writing `nxt` (all writes
        // were local; the barrier separates rounds).
        loc.rmi_fence();
        std::mem::swap(&mut cur, &mut nxt);
    }
    cur.1
}

/// **Collective.** Positions from the head of the list: element `i` of a
/// list of length `len` gets `len - 1 - rank_after(i)`. Elements not in
/// any list (i.e. unreachable self-contained NILs) get their rank-based
/// value as well; callers index only list members.
pub fn list_positions(succ: &PArray<usize>, len: usize) -> PArray<u64> {
    let ranks = list_rank_after(succ);
    let pos = PArray::new(succ.location(), succ.global_size(), 0u64);
    ranks.for_each_local(|i, r| {
        pos.set_element(i, (len as u64 - 1).saturating_sub(*r));
    });
    succ.location().barrier();
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    /// Builds succ for the identity list 0 → 1 → ... → n-1.
    fn chain(loc: &stapl_rts::Location, n: usize) -> PArray<usize> {
        PArray::from_fn(loc, n, |i| if i + 1 < n { i + 1 } else { NIL })
    }

    #[test]
    fn chain_ranks_count_down() {
        execute(RtsConfig::default(), 2, |loc| {
            let s = chain(loc, 10);
            let r = list_rank_after(&s);
            for i in 0..10 {
                assert_eq!(r.get_element(i), (9 - i) as u64);
            }
        });
    }

    #[test]
    fn positions_recover_list_order() {
        execute(RtsConfig::default(), 3, |loc| {
            // A scrambled list over indices: 4 → 2 → 0 → 5 → 1 → 3.
            let order = [4usize, 2, 0, 5, 1, 3];
            let s = PArray::from_fn(loc, 6, |i| {
                let at = order.iter().position(|&x| x == i).unwrap();
                if at + 1 < 6 {
                    order[at + 1]
                } else {
                    NIL
                }
            });
            let pos = list_positions(&s, 6);
            for (expect, &i) in order.iter().enumerate() {
                assert_eq!(pos.get_element(i), expect as u64, "element {i}");
            }
        });
    }

    #[test]
    fn single_element_list() {
        execute(RtsConfig::default(), 2, |loc| {
            let s = PArray::new(loc, 1, NIL);
            let r = list_rank_after(&s);
            assert_eq!(r.get_element(0), 0);
        });
    }

    #[test]
    fn long_chain_many_rounds() {
        execute(RtsConfig::default(), 2, |loc| {
            let n = 300;
            let s = chain(loc, n);
            let r = list_rank_after(&s);
            for i in (0..n).step_by(37) {
                assert_eq!(r.get_element(i), (n - 1 - i) as u64);
            }
        });
    }
}
