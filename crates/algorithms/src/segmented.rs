//! Segmented pAlgorithms: the dynamic-container counterparts of the
//! bulk-range `p_copy`/`p_equal` family. Dynamic containers (pList,
//! pAssoc, pGraph) have no dense GID ranges, but they are organized as
//! base-container *segments* ([`SegmentedContainer`]), so these
//! algorithms move **one RMI per (owner, segment)** — O(segments)
//! messages where the `_elementwise` fallbacks pay O(N).
//!
//! All algorithms are **collective**.

use std::collections::HashMap;
use std::hash::Hash;

use stapl_core::interfaces::SegmentedContainer;

/// `p_copy` over segments: copies every item of `src` into the
/// same-keyed item of `dst`, which must share `src`'s segment structure
/// and item keys (two identically built pLists, two pAssocs over the same
/// key distribution) — the same contract as `p_copy_elementwise` on
/// shared GIDs. Each location reads its local segments under one borrow
/// apiece and ships one `set_segment` RMI per remote (owner, segment);
/// items of `dst` missing a key are skipped, exactly like the
/// element-wise `set_element` path.
pub fn p_copy_segmented<S, D>(src: &S, dst: &D)
where
    S: SegmentedContainer,
    D: SegmentedContainer<ItemKey = S::ItemKey, ItemVal = S::ItemVal>,
{
    for sid in src.local_segments() {
        let mut items = Vec::new();
        src.with_segment(sid, &mut |k, v| items.push((k.clone(), v.clone())));
        dst.set_segment(sid, items);
    }
    src.location().rmi_fence();
}

/// `p_equal` over segments: true when `a` and `b` hold equal items under
/// equal keys in every segment. Each location compares its local segments
/// of `a` against **one bulk fetch** of the corresponding segment of `b`
/// (order-insensitively, so hashed stores with different insertion
/// histories still compare equal), short-circuiting across segments after
/// the first mismatch.
pub fn p_equal_segmented<A, B>(a: &A, b: &B) -> bool
where
    A: SegmentedContainer,
    B: SegmentedContainer<ItemKey = A::ItemKey, ItemVal = A::ItemVal>,
    A::ItemKey: Eq + Hash,
    A::ItemVal: PartialEq,
{
    let mut ok = true;
    for sid in a.local_segments() {
        if !ok {
            break;
        }
        let theirs: HashMap<A::ItemKey, A::ItemVal> = b.get_segment(sid).into_iter().collect();
        let mut n = 0usize;
        a.with_segment(sid, &mut |k, v| {
            n += 1;
            if ok && theirs.get(k) != Some(v) {
                ok = false;
            }
        });
        ok = ok && n == theirs.len();
    }
    a.location().allreduce(ok, |x, y| x && y)
}

/// `p_reduce` over segments: `map` extracts a summary from each (key,
/// item) pair, `combine` merges summaries (associative). Each location
/// folds its local segments under one borrow apiece; returns the global
/// reduction on every location, `None` for an empty container.
pub fn p_reduce_segmented<C, A, M, R>(c: &C, map: M, combine: R) -> Option<A>
where
    C: SegmentedContainer,
    A: Send + Clone + 'static,
    M: Fn(&C::ItemKey, &C::ItemVal) -> A,
    R: Fn(A, A) -> A + Copy,
{
    let mut acc: Option<A> = None;
    for sid in c.local_segments() {
        c.with_segment(sid, &mut |k, v| {
            let x = map(k, v);
            acc = Some(match acc.take() {
                None => x,
                Some(a) => combine(a, x),
            });
        });
    }
    let partials = c.location().allgather(acc);
    partials.into_iter().flatten().reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::associative::PHashMap;
    use stapl_containers::list::PList;
    use stapl_core::interfaces::{
        AssociativeContainer, ElementWrite, LocalIteration, PContainer, SequenceContainer,
    };
    use stapl_rts::{execute, RtsConfig};

    /// Two identically shaped pLists (same slabs, same sequence numbers).
    fn twin_lists(loc: &stapl_rts::Location, per: usize) -> (PList<u64>, PList<u64>) {
        let src: PList<u64> = PList::new(loc);
        let dst: PList<u64> = PList::new(loc);
        for i in 0..per {
            src.push_anywhere(loc.id() as u64 * 1000 + i as u64);
            dst.push_anywhere(0);
        }
        src.commit();
        dst.commit();
        (src, dst)
    }

    #[test]
    fn copy_and_equal_on_plists() {
        execute(RtsConfig::default(), 3, |loc| {
            let (src, dst) = twin_lists(loc, 6);
            assert!(!p_equal_segmented(&src, &dst));
            p_copy_segmented(&src, &dst);
            assert!(p_equal_segmented(&src, &dst));
            assert_eq!(src.collect_ordered(), dst.collect_ordered());
            loc.barrier();
            // A genuine mismatch is detected.
            if loc.id() == 0 {
                let g = src.push_anywhere(424242);
                SequenceContainer::erase_async(&src, g);
            }
            src.commit();
            if loc.id() == 1 {
                let gid = {
                    let mut first = None;
                    dst.for_each_local(|g, _| first = first.or(Some(g)));
                    first.unwrap()
                };
                dst.set_element(gid, 999_999);
            }
            loc.rmi_fence();
            assert!(!p_equal_segmented(&src, &dst));
        });
    }

    #[test]
    fn copy_beats_elementwise_on_migrated_slabs() {
        execute(RtsConfig::unbuffered(), 4, |loc| {
            let (src, dst) = twin_lists(loc, 64);
            // Rotate every dst slab one location over: all writes remote.
            if loc.id() == 0 {
                for sid in 0..loc.nlocs() {
                    dst.migrate_bcontainer(sid, (sid + 1) % loc.nlocs());
                }
            }
            loc.rmi_fence();
            // Snapshot, then barrier, so no location starts the measured
            // phase before every location has its baseline.
            let before = loc.stats();
            loc.barrier();
            p_copy_segmented(&src, &dst);
            let seg_reqs = loc.stats().remote_requests - before.remote_requests;
            loc.barrier();
            let before = loc.stats();
            loc.barrier();
            crate::map_func::p_copy_elementwise(&src, &dst);
            let elem_reqs = loc.stats().remote_requests - before.remote_requests;
            assert!(p_equal_segmented(&src, &dst));
            assert!(
                seg_reqs * 10 <= elem_reqs,
                "segmented copy should coarsen remote traffic >= 10x \
                 (got {seg_reqs} vs {elem_reqs})"
            );
        });
    }

    #[test]
    fn reduce_over_segments_matches_elementwise() {
        execute(RtsConfig::default(), 3, |loc| {
            let l: PList<u64> = PList::new(loc);
            for i in 0..10 {
                l.push_anywhere(i);
            }
            l.commit();
            let seg = p_reduce_segmented(&l, |_, v| *v, |a, b| a + b).unwrap();
            let elem = crate::map_func::p_reduce(&l, |_, v| *v, |a, b| a + b).unwrap();
            assert_eq!(seg, elem);
            assert_eq!(seg, 45 * loc.nlocs() as u64);
            let empty: PList<u64> = PList::new(loc);
            empty.commit();
            assert_eq!(p_reduce_segmented(&empty, |_, v| *v, |a: u64, b| a + b), None);
        });
    }

    #[test]
    fn copy_and_equal_on_passoc() {
        execute(RtsConfig::default(), 2, |loc| {
            let a: PHashMap<u64, u64> = PHashMap::with_buckets(loc, 4);
            let b: PHashMap<u64, u64> = PHashMap::with_buckets(loc, 4);
            if loc.id() == 0 {
                for k in 0..20 {
                    a.insert_async(k, k * 7);
                    b.insert_async(k, 0); // same keys, different insertion order below
                }
            } else {
                for k in (0..20).rev() {
                    b.insert_async(k, 0);
                }
            }
            a.commit();
            b.commit();
            p_copy_segmented(&a, &b);
            assert!(p_equal_segmented(&a, &b), "order-insensitive segment compare");
            for k in 0..20 {
                assert_eq!(b.find(k), Some(k * 7));
            }
        });
    }
}
