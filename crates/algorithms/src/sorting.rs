//! `p_sort`: parallel sample sort — the algorithm the paper uses to
//! motivate commutative-task thread safety (Chapter VI's bucket-insert
//! example).

use stapl_core::interfaces::{ElementRead, LocalIteration, PContainer, RangedContainer};
use stapl_core::pobject::PObject;
use stapl_containers::array::PArray;

/// **Collective.** Sorts the pArray in place (ascending) with sample
/// sort: sample → splitters → bucket exchange → local sort → write-back
/// at globally scanned offsets.
pub fn p_sort<T>(a: &PArray<T>)
where
    T: Ord + Send + Clone + 'static,
{
    let loc = a.location().clone();
    let nlocs = loc.nlocs();
    // 1. Local data and samples (regular quantiles of the sorted local
    //    block give robust splitters).
    let mut local: Vec<T> = Vec::with_capacity(a.local_size());
    a.for_each_local(|_, v| local.push(v.clone()));
    let mut sample_src = local.clone();
    sample_src.sort();
    let oversample = 4;
    let samples: Vec<T> = (0..nlocs * oversample)
        .filter_map(|k| {
            if sample_src.is_empty() {
                None
            } else {
                Some(sample_src[(k * sample_src.len()) / (nlocs * oversample)].clone())
            }
        })
        .collect();
    let mut all_samples: Vec<T> = loc
        .allgather(samples)
        .into_iter()
        .flatten()
        .collect();
    all_samples.sort();
    let splitters: Vec<T> = (1..nlocs)
        .filter_map(|k| all_samples.get(k * all_samples.len() / nlocs).cloned())
        .collect();
    // 2. Bucket exchange, coarsened: elements are grouped per destination
    //    locally and each group ships as ONE bulk append per peer — the
    //    boundary-exchange analog of the bulk-range transport (O(P)
    //    messages per location instead of O(n/P)). Owner-side execution
    //    keeps the concurrent appends atomic (the commutative-task
    //    pattern of Ch. VI).
    let buckets = PObject::register(&loc, Vec::<T>::new());
    loc.barrier();
    let mut outgoing: Vec<Vec<T>> = (0..nlocs).map(|_| Vec::new()).collect();
    for v in local {
        let dest = splitters.partition_point(|s| s <= &v).min(nlocs - 1);
        outgoing[dest].push(v);
    }
    for (dest, batch) in outgoing.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        if dest != loc.id() {
            loc.note_bulk_request(batch.len() as u64);
        }
        buckets.invoke_at(dest, move |cell, _| cell.borrow_mut().extend(batch));
    }
    loc.rmi_fence();
    // 3. Local sort.
    let mut mine = std::mem::take(&mut *buckets.local_mut());
    mine.sort();
    // 4. Write back at scanned global offsets: the sorted block is one
    //    contiguous GID range — one bulk RMI per (owner, run) instead of
    //    one set_element per element.
    let (start, total) = loc.exclusive_scan(mine.len(), 0, |x, y| x + y);
    debug_assert_eq!(total, a.global_size());
    a.set_range(start, mine);
    loc.rmi_fence();
}

/// **Collective.** True when the array is globally non-decreasing.
pub fn p_is_sorted<T>(a: &PArray<T>) -> bool
where
    T: Ord + Send + Clone + 'static,
{
    let loc = a.location();
    let n = a.global_size();
    let mut ok = true;
    let mut prev: Option<(usize, T)> = None;
    a.for_each_local(|g, v| {
        if let Some((pg, pv)) = &prev {
            if *pg + 1 == g && pv > v {
                ok = false;
            }
        }
        prev = Some((g, v.clone()));
    });
    // Check the seams between locations' blocks.
    let mut seams_ok = true;
    a.for_each_local(|g, v| {
        if g + 1 < n && !a.is_local(g + 1) {
            let next = a.get_element(g + 1);
            if *v > next {
                seams_ok = false;
            }
        }
    });
    loc.allreduce(ok && seams_ok, |x, y| x && y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn sorts_random_input() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 120, 0u64);
            // Each location fills its stripe with seeded random values.
            let mut rng = StdRng::seed_from_u64(9 + loc.id() as u64);
            a.for_each_local_mut(|_, v| *v = rng.random_range(0..1000));
            loc.barrier();
            assert!(!p_is_sorted(&a) || a.global_size() < 2);
            p_sort(&a);
            assert!(p_is_sorted(&a));
            // Multiset preserved.
            let sum = crate::map_func::p_sum(&a);
            let check = loc.allreduce_sum(sum) / loc.nlocs() as u64;
            assert_eq!(sum, check);
        });
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 50, |i| i as u64);
            p_sort(&a);
            assert!(p_is_sorted(&a));
            for i in 0..50 {
                assert_eq!(a.get_element(i), i as u64);
            }
            let b = PArray::from_fn(loc, 50, |i| (49 - i) as u64);
            p_sort(&b);
            for i in 0..50 {
                assert_eq!(b.get_element(i), i as u64);
            }
        });
    }

    #[test]
    fn sorts_with_duplicates_and_single_location() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::from_fn(loc, 20, |i| (i % 3) as u64);
            p_sort(&a);
            assert!(p_is_sorted(&a));
            assert_eq!(crate::map_func::p_count_if(&a, |v| *v == 0), 7);
            let _ = loc;
        });
    }

    #[test]
    fn sorts_skewed_distribution() {
        // All the mass in one location's range stresses the splitters.
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 64, |i| if i < 60 { 5u64 } else { i as u64 });
            p_sort(&a);
            assert!(p_is_sorted(&a));
            assert_eq!(a.get_element(0), 5);
            assert_eq!(a.get_element(63), 63);
            let _ = loc;
        });
    }
}
