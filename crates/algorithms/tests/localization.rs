//! Counter-based proof of the localization + bulk-transport layer: a
//! misaligned `p_copy` of N elements must issue O(number of contiguous
//! runs) remote requests, not O(N). Stats-based, so the assertions are
//! wall-clock-independent and CI-stable.

use stapl_algorithms::map_func::{p_copy, p_copy_elementwise, p_equal};
use stapl_containers::array::PArray;
use stapl_core::interfaces::ElementRead;
use stapl_core::mapper::{CyclicMapper, GeneralMapper};
use stapl_core::partition::{BalancedPartition, BlockedPartition};
use stapl_rts::{execute, RtsConfig};

const N: usize = 4000;
const P: usize = 4;

/// src balanced over P locations; dst blocked with off-by-7 block bounds
/// and rotated placement — every (src-run × dst-run) boundary cut
/// produces a run, but there are O(P) of them, not O(N).
fn misaligned_pair(loc: &stapl_rts::Location) -> (PArray<u64>, PArray<u64>) {
    let src = PArray::from_fn(loc, N, |i| i as u64 * 3 + 1);
    let blocked = BlockedPartition::new(N, N / P + 7);
    let parts = stapl_core::partition::IndexPartition::num_subdomains(&blocked);
    let assignment: Vec<usize> = (0..parts).map(|b| (b + 1) % loc.nlocs()).collect();
    let dst = PArray::with_partition(
        loc,
        Box::new(blocked),
        Box::new(GeneralMapper::new(loc.nlocs(), assignment)),
        0u64,
    );
    (src, dst)
}

#[test]
fn misaligned_p_copy_issues_o_runs_remote_requests() {
    execute(RtsConfig::default(), P, |loc| {
        let (src, dst) = misaligned_pair(loc);
        loc.rmi_fence();
        // Measurement window: every location snapshots `before` ahead of
        // the barrier (so no peer's traffic leaks in) and `after` right at
        // the collective fence inside p_copy (before any later traffic).
        let before = loc.stats();
        loc.barrier();
        p_copy(&src, &dst);
        let after = loc.stats();
        loc.barrier();
        // Each location's local block decomposes into at most 3 dst runs
        // (two block boundaries cut it); add slack for fence/scan control
        // traffic. The point: ~N remote requests would dwarf this bound.
        let remote = after.remote_requests - before.remote_requests;
        let bulk = after.bulk_requests - before.bulk_requests;
        assert!(bulk >= 1, "misaligned copy must use the bulk path");
        assert!(
            bulk <= (3 * P) as u64,
            "bulk requests must be O(runs): got {bulk} for {P} locations"
        );
        assert!(
            remote < (N / 10) as u64,
            "misaligned p_copy of {N} elements issued {remote} remote requests — \
             that is O(N), not O(runs)"
        );
        assert_eq!(
            after.element_fallbacks, before.element_fallbacks,
            "no element-wise fallback expected on long runs"
        );
        // And the copy is correct.
        assert!(p_equal(&src, &dst));
        for i in (0..N).step_by(997) {
            assert_eq!(dst.get_element(i), i as u64 * 3 + 1);
        }
    });
}

#[test]
fn elementwise_baseline_really_pays_o_n() {
    // Establishes that the counter comparison above is meaningful: the
    // element-wise path on the same scenario issues ~N remote requests.
    execute(RtsConfig::default(), P, |loc| {
        let (src, dst) = misaligned_pair(loc);
        loc.rmi_fence();
        let before = loc.stats();
        loc.barrier();
        p_copy_elementwise(&src, &dst);
        let after = loc.stats();
        loc.barrier();
        let remote = after.remote_requests - before.remote_requests;
        assert!(
            remote >= (N / 2) as u64,
            "element-wise misaligned copy should be O(N) remote requests, got {remote}"
        );
        assert!(p_equal(&src, &dst));
    });
}

#[test]
fn aligned_p_copy_is_communication_free_except_fence() {
    execute(RtsConfig::default(), P, |loc| {
        let src = PArray::from_fn(loc, N, |i| i as u64);
        let dst = PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(N, loc.nlocs())),
            Box::new(CyclicMapper::new(loc.nlocs())),
            0u64,
        );
        loc.rmi_fence();
        let before = loc.stats();
        loc.barrier();
        p_copy(&src, &dst);
        let after = loc.stats();
        loc.barrier();
        assert_eq!(
            after.bulk_requests, before.bulk_requests,
            "aligned runs are local slice copies, not RMIs"
        );
        assert!(after.localized_chunks > before.localized_chunks);
        assert!(p_equal(&src, &dst));
    });
}
