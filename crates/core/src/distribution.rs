//! The data-distribution manager (Table X): partition + partition mapper,
//! replicated per location, answering "where does GID g live?".
//!
//! This is the module that provides the shared-object view: every
//! element-wise container method asks the distribution for the (BCID,
//! location) of the target GID and then either executes locally or ships
//! the operation (Fig. 7's address-resolution flow).

use stapl_rts::LocId;

use crate::domain::Range1d;
use crate::gid::Bcid;
use crate::mapper::PartitionMapper;
use crate::partition::{IndexPartition, IndexSubDomain, KeyPartition};

/// A maximal run of GIDs that live on one owner *and* are contiguous in
/// the owning base container's storage — the unit of bulk transport: a
/// whole run moves as one RMI and reads/writes one slice at the owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GidRun {
    /// The GIDs of the run, `[gids.lo, gids.hi)`.
    pub gids: Range1d,
    /// Base container holding the run.
    pub bcid: Bcid,
    /// Location owning that base container.
    pub owner: LocId,
}

/// Distribution of a 1-D indexed container (pArray, pVector).
pub struct IndexDistribution {
    partition: Box<dyn IndexPartition>,
    mapper: Box<dyn PartitionMapper>,
    /// Incremented by every [`IndexDistribution::replace`]. Locality layers
    /// (owner caches, views that memoize placement) compare epochs to
    /// detect that a redistribute/rebalance invalidated their copies.
    epoch: u64,
}

impl Clone for IndexDistribution {
    fn clone(&self) -> Self {
        IndexDistribution {
            partition: self.partition.clone(),
            mapper: self.mapper.clone(),
            epoch: self.epoch,
        }
    }
}

impl IndexDistribution {
    pub fn new(partition: Box<dyn IndexPartition>, mapper: Box<dyn PartitionMapper>) -> Self {
        IndexDistribution { partition, mapper, epoch: 0 }
    }

    /// The distribution epoch: how many times this distribution has been
    /// replaced since construction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn partition(&self) -> &dyn IndexPartition {
        self.partition.as_ref()
    }

    pub fn mapper(&self) -> &dyn PartitionMapper {
        self.mapper.as_ref()
    }

    pub fn global_size(&self) -> usize {
        self.partition.global_size()
    }

    /// (BCID, owning location) of `gid` — the `get_info` + mapper lookup of
    /// the paper's invoke skeleton.
    pub fn locate(&self, gid: usize) -> (Bcid, LocId) {
        let b = self.partition.find(gid);
        (b, self.mapper.map(b))
    }

    /// BCID when `gid` is owned by `loc`, else `None` (Table XII's
    /// `is_local` with BCID out-parameter).
    pub fn local_bcid(&self, gid: usize, loc: LocId) -> Option<Bcid> {
        let (b, owner) = self.locate(gid);
        (owner == loc).then_some(b)
    }

    /// BCIDs mapped to `loc`, ascending.
    pub fn bcids_of(&self, loc: LocId) -> Vec<Bcid> {
        self.mapper.local_bcids(loc, self.partition.num_subdomains())
    }

    /// (BCID, sub-domain) pairs owned by `loc`, ascending by BCID.
    pub fn local_subdomains(&self, loc: LocId) -> Vec<(Bcid, IndexSubDomain)> {
        self.bcids_of(loc).into_iter().map(|b| (b, self.partition.subdomain(b))).collect()
    }

    /// Decomposes `[r.lo, r.hi)` into its maximal storage-contiguous runs,
    /// in GID order: each run lies inside one base container and (for
    /// block-cyclic sub-domains) inside one block, so it maps to one
    /// contiguous storage span at the owner. Cost is O(number of runs) —
    /// the decomposition bulk transport coarsens element traffic onto.
    pub fn contiguous_runs(&self, r: Range1d) -> Vec<GidRun> {
        assert!(
            r.hi <= self.global_size(),
            "range [{}, {}) exceeds the distributed domain (size {})",
            r.lo,
            r.hi,
            self.global_size()
        );
        let mut out = Vec::new();
        let mut g = r.lo;
        while g < r.hi {
            let bcid = self.partition.find(g);
            let run_hi = match self.partition.subdomain(bcid) {
                IndexSubDomain::Contiguous(sd) => sd.hi.min(r.hi),
                IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                    let block_lo = g - (g - first) % stride;
                    (block_lo + block).min(global_hi).min(r.hi)
                }
            };
            debug_assert!(run_hi > g, "run decomposition must make progress");
            out.push(GidRun { gids: Range1d::new(g, run_hi), bcid, owner: self.mapper.map(bcid) });
            g = run_hi;
        }
        out
    }

    /// Replaces partition and mapper — the redistribution entry point
    /// (Section V.G); the caller moves the data. Bumps the epoch so stale
    /// placement copies can be detected.
    pub fn replace(&mut self, partition: Box<dyn IndexPartition>, mapper: Box<dyn PartitionMapper>) {
        self.partition = partition;
        self.mapper = mapper;
        self.epoch += 1;
    }

    /// Swaps in a freshly-constructed distribution (whose own epoch starts
    /// at 0), carrying this one's epoch forward and bumping it — the form
    /// redistribution uses, since it builds the new distribution ahead of
    /// the data movement. Without the carry-over, an epoch-keyed cache
    /// would see 0 → 0 and never invalidate.
    pub fn replace_with(&mut self, new: IndexDistribution) {
        let epoch = self.epoch;
        *self = new;
        self.epoch = epoch + 1;
    }

    /// Approximate metadata bytes of the replicated distribution.
    pub fn memory_size(&self) -> usize {
        std::mem::size_of::<Self>() + self.partition.num_subdomains() * std::mem::size_of::<usize>()
    }
}

/// Distribution of an associative container: key partition + mapper.
pub struct KeyDistribution<K> {
    partition: Box<dyn KeyPartition<K>>,
    mapper: Box<dyn PartitionMapper>,
}

impl<K: 'static> Clone for KeyDistribution<K> {
    fn clone(&self) -> Self {
        KeyDistribution { partition: self.partition.clone(), mapper: self.mapper.clone() }
    }
}

impl<K: 'static> KeyDistribution<K> {
    pub fn new(partition: Box<dyn KeyPartition<K>>, mapper: Box<dyn PartitionMapper>) -> Self {
        KeyDistribution { partition, mapper }
    }

    pub fn locate(&self, k: &K) -> (Bcid, LocId) {
        let b = self.partition.find(k);
        (b, self.mapper.map(b))
    }

    pub fn num_subdomains(&self) -> usize {
        self.partition.num_subdomains()
    }

    pub fn bcids_of(&self, loc: LocId) -> Vec<Bcid> {
        self.mapper.local_bcids(loc, self.partition.num_subdomains())
    }

    pub fn mapper(&self) -> &dyn PartitionMapper {
        self.mapper.as_ref()
    }

    pub fn partition(&self) -> &dyn KeyPartition<K> {
        self.partition.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::CyclicMapper;
    use crate::partition::{BalancedPartition, HashPartition, SplitterPartition};

    #[test]
    fn locate_agrees_with_partition_and_mapper() {
        // 12 elements, 4 sub-domains, 2 locations, cyclic — Fig. 10 setup.
        let d = IndexDistribution::new(
            Box::new(BalancedPartition::new(12, 4)),
            Box::new(CyclicMapper::new(2)),
        );
        assert_eq!(d.locate(0), (0, 0));
        assert_eq!(d.locate(3), (1, 1));
        assert_eq!(d.locate(6), (2, 0));
        assert_eq!(d.locate(9), (3, 1));
        assert_eq!(d.local_bcid(6, 0), Some(2));
        assert_eq!(d.local_bcid(6, 1), None);
    }

    #[test]
    fn local_subdomains_cover_location_elements() {
        let d = IndexDistribution::new(
            Box::new(BalancedPartition::new(100, 8)),
            Box::new(CyclicMapper::new(4)),
        );
        let mut total = 0;
        for loc in 0..4 {
            for (b, sd) in d.local_subdomains(loc) {
                for g in sd.iter() {
                    assert_eq!(d.locate(g), (b, loc));
                    total += 1;
                }
            }
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn contiguous_runs_cover_in_order_and_match_locate() {
        // Mix of contiguous (balanced) and strided (block-cyclic) shapes.
        let dists = [
            IndexDistribution::new(
                Box::new(BalancedPartition::new(37, 5)),
                Box::new(CyclicMapper::new(3)),
            ),
            IndexDistribution::new(
                Box::new(crate::partition::BlockCyclicPartition::new(29, 3, 4)),
                Box::new(CyclicMapper::new(2)),
            ),
            IndexDistribution::new(
                Box::new(crate::partition::ExplicitPartition::from_sizes(&[3, 9, 1, 8])),
                Box::new(CyclicMapper::new(4)),
            ),
        ];
        for d in &dists {
            for (lo, hi) in [(0, d.global_size()), (1, d.global_size() - 2), (5, 5)] {
                let r = Range1d::new(lo, hi);
                let runs = d.contiguous_runs(r);
                // Runs are consecutive and cover exactly [lo, hi).
                let mut g = lo;
                for run in &runs {
                    assert_eq!(run.gids.lo, g);
                    assert!(run.gids.hi > run.gids.lo);
                    // Every GID of the run resolves to the run's (bcid, owner)
                    // and to consecutive storage offsets.
                    let sd = d.partition().subdomain(run.bcid);
                    let base = sd.offset(run.gids.lo);
                    for (k, gid) in run.gids.iter().enumerate() {
                        assert_eq!(d.locate(gid), (run.bcid, run.owner));
                        assert_eq!(sd.offset(gid), base + k);
                    }
                    g = run.gids.hi;
                }
                assert_eq!(g, hi.max(lo));
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the distributed domain")]
    fn contiguous_runs_rejects_out_of_bounds() {
        let d = IndexDistribution::new(
            Box::new(BalancedPartition::new(10, 2)),
            Box::new(CyclicMapper::new(2)),
        );
        d.contiguous_runs(Range1d::new(5, 11));
    }

    #[test]
    fn replace_swaps_partition() {
        let mut d = IndexDistribution::new(
            Box::new(BalancedPartition::new(10, 2)),
            Box::new(CyclicMapper::new(2)),
        );
        assert_eq!(d.locate(9).0, 1);
        assert_eq!(d.epoch(), 0);
        d.replace(Box::new(BalancedPartition::new(10, 5)), Box::new(CyclicMapper::new(2)));
        assert_eq!(d.locate(9).0, 4);
        assert_eq!(d.locate(9).1, 0); // bcid 4 -> loc 0 cyclic over 2
        assert_eq!(d.epoch(), 1, "replace must bump the distribution epoch");
        assert_eq!(d.clone().epoch(), 1, "clones carry the epoch");
        // replace_with carries the epoch forward past a fresh distribution.
        let fresh = IndexDistribution::new(
            Box::new(BalancedPartition::new(10, 2)),
            Box::new(CyclicMapper::new(2)),
        );
        assert_eq!(fresh.epoch(), 0);
        d.replace_with(fresh);
        assert_eq!(d.epoch(), 2, "replace_with must not reset the epoch");
    }

    #[test]
    fn key_distribution_sorted_and_hashed() {
        let sorted = KeyDistribution::new(
            Box::new(SplitterPartition::new(vec![50, 100])),
            Box::new(CyclicMapper::new(3)),
        );
        assert_eq!(sorted.locate(&10).0, 0);
        assert_eq!(sorted.locate(&75).0, 1);
        assert_eq!(sorted.locate(&200).0, 2);

        let hashed: KeyDistribution<i32> = KeyDistribution::new(
            Box::new(HashPartition::new(6)),
            Box::new(CyclicMapper::new(3)),
        );
        let (b, l) = hashed.locate(&42);
        assert!(b < 6 && l < 3);
        assert_eq!(hashed.locate(&42), (b, l));
    }
}
