//! Thread safety (Chapter VI): per-method locking policies and pluggable
//! thread-safety managers.
//!
//! Each pContainer method declares a *locking policy*: the granularity of
//! the data it touches (`Element`, `BContainer`, `Local`, or `None`) and
//! whether it reads or writes data and metadata. A *thread-safety manager*
//! turns those declarations into actual mutual exclusion. The framework
//! ships `NoLock` (for single-threaded locations or when the task graph
//! already serializes conflicting accesses — the paper's default for static
//! containers), a single `GlobalMutex`, a `HashedLocks(K)` manager (the
//! paper's "K locks, hash each GID to one" refinement), and a
//! reader-writer manager.
//!
//! In this reproduction each location executes requests on one thread, so
//! owner-side method execution is already atomic; the managers matter when
//! base containers are shared by several worker threads inside a location,
//! which is how the tests and the ablation bench exercise them.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::lock_api::{RawMutex as RawMutexApi, RawRwLock as RawRwLockApi};
use parking_lot::{RawMutex, RawRwLock};

use crate::gid::Bcid;

/// Identifier of a container method, used to look up its locking policy
/// (the paper's `LP_SET`, `LP_GET`, `LP_INSERT`, ... constants).
pub type MethodId = u32;

pub mod methods {
    //! Well-known method ids shared by the provided containers.
    use super::MethodId;

    pub const SET: MethodId = 0;
    pub const GET: MethodId = 1;
    pub const APPLY: MethodId = 2;
    pub const INSERT: MethodId = 3;
    pub const ERASE: MethodId = 4;
    pub const PUSH_BACK: MethodId = 5;
    pub const POP_BACK: MethodId = 6;
    pub const PUSH_FRONT: MethodId = 7;
    pub const POP_FRONT: MethodId = 8;
    pub const PUSH_ANYWHERE: MethodId = 9;
    pub const FIND: MethodId = 10;
    pub const ADD_VERTEX: MethodId = 11;
    pub const DELETE_VERTEX: MethodId = 12;
    pub const ADD_EDGE: MethodId = 13;
    pub const DELETE_EDGE: MethodId = 14;
    pub const SIZE: MethodId = 15;
}

/// How much of the local data a method locks (Chapter VI.D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockGranularity {
    /// No locking required (read-only phases, or safety delegated to the
    /// task dependence graph).
    None,
    /// One element, identified by its GID hash.
    Element,
    /// One base container.
    BContainer,
    /// Everything stored on the location.
    Local,
}

/// Read/write mode for data or metadata accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessMode {
    Read,
    Write,
}

/// Locking attributes of one method: granularity plus data and metadata
/// access modes — the `(ELEMENT, WRITE, MDREAD)` tuples of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MethodPolicy {
    pub granularity: LockGranularity,
    pub data: AccessMode,
    pub metadata: AccessMode,
}

impl MethodPolicy {
    pub const fn new(granularity: LockGranularity, data: AccessMode, metadata: AccessMode) -> Self {
        MethodPolicy { granularity, data, metadata }
    }

    pub const NONE: MethodPolicy =
        MethodPolicy::new(LockGranularity::None, AccessMode::Read, AccessMode::Read);
}

/// Per-method policy table with a default, owned by each partition /
/// container instance (the paper's `m_locking_policy` array).
#[derive(Clone, Debug)]
pub struct LockingPolicyTable {
    default: MethodPolicy,
    overrides: HashMap<MethodId, MethodPolicy>,
}

impl LockingPolicyTable {
    pub fn new(default: MethodPolicy) -> Self {
        LockingPolicyTable { default, overrides: HashMap::new() }
    }

    /// A table whose every method is `None` — the default for static
    /// read-mostly containers (pArray, pMatrix).
    pub fn unlocked() -> Self {
        Self::new(MethodPolicy::NONE)
    }

    /// The pVector-style default of the paper: element-granularity
    /// read/write for accessors, local-granularity write for structural
    /// methods.
    pub fn dynamic_default() -> Self {
        let mut t = Self::new(MethodPolicy::new(
            LockGranularity::Local,
            AccessMode::Write,
            AccessMode::Write,
        ));
        t.set(methods::SET, MethodPolicy::new(LockGranularity::Element, AccessMode::Write, AccessMode::Read));
        t.set(methods::GET, MethodPolicy::new(LockGranularity::Element, AccessMode::Read, AccessMode::Read));
        t.set(methods::APPLY, MethodPolicy::new(LockGranularity::Element, AccessMode::Write, AccessMode::Read));
        t.set(methods::FIND, MethodPolicy::new(LockGranularity::Element, AccessMode::Read, AccessMode::Read));
        t
    }

    pub fn set(&mut self, m: MethodId, p: MethodPolicy) {
        self.overrides.insert(m, p);
    }

    /// `get_locking_policy` of the paper.
    pub fn get(&self, m: MethodId) -> MethodPolicy {
        self.overrides.get(&m).copied().unwrap_or(self.default)
    }
}

/// Context handed to the manager: which method runs, on which element.
#[derive(Clone, Copy, Debug)]
pub struct ThsInfo {
    pub method: MethodId,
    pub gid_hash: u64,
    pub bcid: Bcid,
}

/// The thread-safety manager interface of Chapter VI.C. `*_pre` acquires,
/// `*_post` releases; the granularity and mode come from the policy.
pub trait ThreadSafetyManager: Send + Sync + 'static {
    fn data_access_pre(&self, info: &ThsInfo, policy: &MethodPolicy);
    fn data_access_post(&self, info: &ThsInfo, policy: &MethodPolicy);
    fn metadata_access_pre(&self, _info: &ThsInfo, _policy: &MethodPolicy) {}
    fn metadata_access_post(&self, _info: &ThsInfo, _policy: &MethodPolicy) {}
}

/// RAII wrapper pairing `data_access_pre` with `data_access_post`.
pub struct DataGuard<'a> {
    mgr: &'a dyn ThreadSafetyManager,
    info: ThsInfo,
    policy: MethodPolicy,
}

impl<'a> DataGuard<'a> {
    pub fn acquire(mgr: &'a dyn ThreadSafetyManager, info: ThsInfo, policy: MethodPolicy) -> Self {
        mgr.data_access_pre(&info, &policy);
        DataGuard { mgr, info, policy }
    }
}

impl Drop for DataGuard<'_> {
    fn drop(&mut self) {
        self.mgr.data_access_post(&self.info, &self.policy);
    }
}

// ---------------------------------------------------------------------
// Managers
// ---------------------------------------------------------------------

/// Performs no locking whatsoever.
#[derive(Default)]
pub struct NoLockManager;

impl ThreadSafetyManager for NoLockManager {
    fn data_access_pre(&self, _: &ThsInfo, _: &MethodPolicy) {}
    fn data_access_post(&self, _: &ThsInfo, _: &MethodPolicy) {}
}

/// One mutex for the whole location — maximal contention, minimal memory.
pub struct GlobalMutexManager {
    raw: RawMutex,
}

impl Default for GlobalMutexManager {
    fn default() -> Self {
        GlobalMutexManager { raw: RawMutex::INIT }
    }
}

impl ThreadSafetyManager for GlobalMutexManager {
    fn data_access_pre(&self, _: &ThsInfo, policy: &MethodPolicy) {
        if policy.granularity != LockGranularity::None {
            self.raw.lock();
        }
    }

    fn data_access_post(&self, _: &ThsInfo, policy: &MethodPolicy) {
        if policy.granularity != LockGranularity::None {
            // SAFETY: paired with the lock taken in data_access_pre under
            // the same (non-None) granularity.
            unsafe { self.raw.unlock() }
        }
    }
}

/// K mutexes; element accesses hash their GID to one of them, bContainer
/// accesses hash the BCID, and `Local` granularity takes every lock in
/// index order (deadlock-free by total order).
pub struct HashedLockManager {
    locks: Vec<RawMutex>,
}

impl HashedLockManager {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        HashedLockManager { locks: (0..k).map(|_| RawMutex::INIT).collect() }
    }

    fn slot(&self, info: &ThsInfo, policy: &MethodPolicy) -> Option<usize> {
        match policy.granularity {
            LockGranularity::None | LockGranularity::Local => None,
            LockGranularity::Element => Some(info.gid_hash as usize % self.locks.len()),
            LockGranularity::BContainer => Some(info.bcid % self.locks.len()),
        }
    }
}

impl ThreadSafetyManager for HashedLockManager {
    fn data_access_pre(&self, info: &ThsInfo, policy: &MethodPolicy) {
        match policy.granularity {
            LockGranularity::None => {}
            LockGranularity::Local => {
                for l in &self.locks {
                    l.lock();
                }
            }
            _ => self.locks[self.slot(info, policy).unwrap()].lock(),
        }
    }

    fn data_access_post(&self, info: &ThsInfo, policy: &MethodPolicy) {
        match policy.granularity {
            LockGranularity::None => {}
            LockGranularity::Local => {
                for l in self.locks.iter().rev() {
                    // SAFETY: data_access_pre's Local arm locked every
                    // slot; release in reverse order.
                    unsafe { l.unlock() }
                }
            }
            _ => unsafe {
                // SAFETY: slot() is deterministic on (info, policy), so
                // this is the same lock data_access_pre acquired.
                self.locks[self.slot(info, policy).unwrap()].unlock()
            },
        }
    }
}

/// A single reader-writer lock honoring the policy's data access mode:
/// concurrent readers, exclusive writers.
pub struct RwLockManager {
    raw: RawRwLock,
}

impl Default for RwLockManager {
    fn default() -> Self {
        RwLockManager { raw: RawRwLock::INIT }
    }
}

impl ThreadSafetyManager for RwLockManager {
    fn data_access_pre(&self, _: &ThsInfo, policy: &MethodPolicy) {
        match (policy.granularity, policy.data) {
            (LockGranularity::None, _) => {}
            (_, AccessMode::Read) => self.raw.lock_shared(),
            (_, AccessMode::Write) => self.raw.lock_exclusive(),
        }
    }

    fn data_access_post(&self, _: &ThsInfo, policy: &MethodPolicy) {
        match (policy.granularity, policy.data) {
            (LockGranularity::None, _) => {}
            // SAFETY: data_access_pre took a shared lock for this policy.
            (_, AccessMode::Read) => unsafe { self.raw.unlock_shared() },
            // SAFETY: data_access_pre took the exclusive lock for this policy.
            (_, AccessMode::Write) => unsafe { self.raw.unlock_exclusive() },
        }
    }
}

/// Bundle of policy table + manager carried by a container representative.
#[derive(Clone)]
pub struct ThreadSafety {
    pub table: Arc<LockingPolicyTable>,
    pub manager: Arc<dyn ThreadSafetyManager>,
}

impl ThreadSafety {
    pub fn unlocked() -> Self {
        ThreadSafety {
            table: Arc::new(LockingPolicyTable::unlocked()),
            manager: Arc::new(NoLockManager),
        }
    }

    pub fn new(table: LockingPolicyTable, manager: Arc<dyn ThreadSafetyManager>) -> Self {
        ThreadSafety { table: Arc::new(table), manager }
    }

    /// Guards a data access for `method` on the element hashing to
    /// `gid_hash` in `bcid`; the guard releases on drop.
    pub fn guard(&self, method: MethodId, gid_hash: u64, bcid: Bcid) -> DataGuard<'_> {
        let policy = self.table.get(method);
        DataGuard::acquire(self.manager.as_ref(), ThsInfo { method, gid_hash, bcid }, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    #[test]
    fn policy_table_lookup_and_default() {
        let mut t = LockingPolicyTable::unlocked();
        assert_eq!(t.get(methods::SET).granularity, LockGranularity::None);
        t.set(methods::SET, MethodPolicy::new(LockGranularity::Element, AccessMode::Write, AccessMode::Read));
        assert_eq!(t.get(methods::SET).granularity, LockGranularity::Element);
        assert_eq!(t.get(methods::GET).granularity, LockGranularity::None);
    }

    #[test]
    fn dynamic_default_matches_paper_shape() {
        let t = LockingPolicyTable::dynamic_default();
        assert_eq!(t.get(methods::GET).data, AccessMode::Read);
        assert_eq!(t.get(methods::SET).granularity, LockGranularity::Element);
        // Structural ops lock the whole location by default.
        assert_eq!(t.get(methods::PUSH_BACK).granularity, LockGranularity::Local);
        assert_eq!(t.get(methods::INSERT).granularity, LockGranularity::Local);
    }

    /// Hammer a manager from many threads and count mutual-exclusion
    /// violations with an "inside" canary.
    fn violations(mgr: Arc<dyn ThreadSafetyManager>, policy: MethodPolicy, same_element: bool) -> u64 {
        let inside = AtomicI64::new(0);
        let viol = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let mgr = &mgr;
                let inside = &inside;
                let viol = &viol;
                s.spawn(move || {
                    for i in 0..300u64 {
                        let gid = if same_element { 7 } else { t * 10_000 + i };
                        let info = ThsInfo { method: methods::SET, gid_hash: gid, bcid: 0 };
                        mgr.data_access_pre(&info, &policy);
                        if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                            viol.fetch_add(1, Ordering::SeqCst);
                        }
                        // Widen the race window so overlap is observable
                        // even on a single-core host.
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        mgr.data_access_post(&info, &policy);
                    }
                });
            }
        });
        viol.load(Ordering::SeqCst)
    }

    const WR: MethodPolicy =
        MethodPolicy::new(LockGranularity::Element, AccessMode::Write, AccessMode::Read);

    #[test]
    fn global_mutex_excludes() {
        assert_eq!(violations(Arc::new(GlobalMutexManager::default()), WR, true), 0);
    }

    #[test]
    fn hashed_locks_exclude_same_element() {
        assert_eq!(violations(Arc::new(HashedLockManager::new(16)), WR, true), 0);
    }

    #[test]
    fn rwlock_excludes_writers() {
        assert_eq!(violations(Arc::new(RwLockManager::default()), WR, true), 0);
    }

    #[test]
    fn no_lock_manager_admits_races() {
        // Not a correctness property — a sanity check that the canary
        // actually detects concurrency, validating the tests above.
        let v = violations(Arc::new(NoLockManager), WR, true);
        assert!(v > 0, "expected NoLock to admit concurrent entries");
    }

    #[test]
    fn hashed_local_granularity_takes_all_locks() {
        let pol = MethodPolicy::new(LockGranularity::Local, AccessMode::Write, AccessMode::Write);
        assert_eq!(violations(Arc::new(HashedLockManager::new(4)), pol, false), 0);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let mgr = RwLockManager::default();
        let pol = MethodPolicy::new(LockGranularity::Element, AccessMode::Read, AccessMode::Read);
        let info = ThsInfo { method: methods::GET, gid_hash: 1, bcid: 0 };
        // Two nested read acquisitions must not deadlock.
        mgr.data_access_pre(&info, &pol);
        mgr.data_access_pre(&info, &pol);
        mgr.data_access_post(&info, &pol);
        mgr.data_access_post(&info, &pol);
    }

    #[test]
    fn guard_releases_on_drop() {
        let ths = ThreadSafety::new(
            LockingPolicyTable::dynamic_default(),
            Arc::new(GlobalMutexManager::default()),
        );
        {
            let _g = ths.guard(methods::SET, 1, 0);
        }
        // Re-acquiring immediately proves the guard released.
        let _g2 = ths.guard(methods::SET, 1, 0);
    }

    #[test]
    fn none_granularity_skips_locking() {
        let ths = ThreadSafety::unlocked();
        let _a = ths.guard(methods::SET, 1, 0);
        let _b = ths.guard(methods::SET, 1, 0); // would deadlock if locked
    }
}
