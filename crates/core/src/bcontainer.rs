//! The base-container concept (Table III) and memory accounting.
//!
//! A pContainer stores its data in a distributed collection of *base
//! containers* (bContainers), one per sub-domain of the partition. Any
//! sequential container can serve as a bContainer by implementing this
//! minimal interface — the unification bridge the paper describes between
//! existing data structures and the PCF.

/// Memory usage report, split the way the paper reports it (Table XXII):
/// bytes of user data vs bytes of framework metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSize {
    pub metadata: usize,
    pub data: usize,
}

impl MemSize {
    pub fn new(metadata: usize, data: usize) -> Self {
        MemSize { metadata, data }
    }

    pub fn total(&self) -> usize {
        self.metadata + self.data
    }
}

impl std::ops::Add for MemSize {
    type Output = MemSize;

    fn add(self, rhs: MemSize) -> MemSize {
        MemSize { metadata: self.metadata + rhs.metadata, data: self.data + rhs.data }
    }
}

impl std::ops::AddAssign for MemSize {
    fn add_assign(&mut self, rhs: MemSize) {
        self.metadata += rhs.metadata;
        self.data += rhs.data;
    }
}

impl std::iter::Sum for MemSize {
    fn sum<I: Iterator<Item = MemSize>>(iter: I) -> MemSize {
        iter.fold(MemSize::default(), |a, b| a + b)
    }
}

/// Minimal interface every base container must provide (Table III).
/// The `define_type` marshaling hook of the paper is unnecessary in-process
/// (values move across locations as owned `Send` data); its role in the
/// memory studies is played by [`BaseContainer::memory_size`].
pub trait BaseContainer: 'static {
    type Value;

    /// Number of elements currently stored.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deallocates the elements; afterwards `len() == 0`.
    fn clear(&mut self);

    /// Bytes used, split into (metadata, data).
    fn memory_size(&self) -> MemSize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memsize_arithmetic() {
        let a = MemSize::new(10, 100);
        let b = MemSize::new(5, 50);
        assert_eq!((a + b).total(), 165);
        let s: MemSize = [a, b, MemSize::default()].into_iter().sum();
        assert_eq!(s, MemSize::new(15, 150));
        let mut c = a;
        c += b;
        assert_eq!(c.metadata, 15);
    }
}
