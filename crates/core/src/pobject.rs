//! `PObject`: the SPMD-distributed object base every pContainer builds on
//! (the paper's `p_object` / `p_container_base`).
//!
//! A pContainer has one *representative* per location; the union of the
//! representatives is the container. Constructing a `PObject` registers the
//! representative with the RTS (a collective operation — all locations must
//! construct the same objects in the same order so handles agree), after
//! which the `invoke` family routes method executions to any location.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

use stapl_rts::{Handle, LocId, Location, RmiFuture};

/// One location's view of a distributed object whose per-location
/// representative has type `Rep`.
pub struct PObject<Rep: 'static> {
    loc: Location,
    handle: Handle,
    rep: Rc<RefCell<Rep>>,
}

impl<Rep: 'static> Clone for PObject<Rep> {
    fn clone(&self) -> Self {
        PObject { loc: self.loc.clone(), handle: self.handle, rep: self.rep.clone() }
    }
}

impl<Rep: 'static> PObject<Rep> {
    /// Registers `rep` as this location's representative.
    ///
    /// **Collective**: every location must call this at the same point of
    /// the SPMD program (the paper's collective constructors).
    pub fn register(loc: &Location, rep: Rep) -> Self {
        let (handle, rc) = loc.register(RefCell::new(rep));
        PObject { loc: loc.clone(), handle, rep: rc }
    }

    pub fn location(&self) -> &Location {
        &self.loc
    }

    pub fn handle(&self) -> Handle {
        self.handle
    }

    /// Immutable access to the local representative.
    ///
    /// Do not hold the borrow across any call that may poll the runtime
    /// (sync RMIs, fences, collectives): incoming requests also borrow the
    /// representative.
    pub fn local(&self) -> Ref<'_, Rep> {
        self.rep.borrow()
    }

    /// Mutable access to the local representative. Same caveat as
    /// [`PObject::local`].
    pub fn local_mut(&self) -> RefMut<'_, Rep> {
        self.rep.borrow_mut()
    }

    /// The raw cell holding the local representative, in the shape RMI
    /// handlers receive it.
    pub fn rep_cell(&self) -> &RefCell<Rep> {
        &self.rep
    }

    /// Asynchronous method execution on `dest` (the paper's
    /// distribution-manager `invoke`): returns immediately; completion is
    /// guaranteed by the next fence. Executes inline when `dest` is this
    /// location (the local fast path).
    pub fn invoke_at<F>(&self, dest: LocId, f: F)
    where
        F: FnOnce(&RefCell<Rep>, &Location) + Send + 'static,
    {
        self.loc.async_rmi(dest, self.handle, f);
    }

    /// Synchronous method execution on `dest` (`invoke_ret`): blocks until
    /// the result is available, servicing incoming requests meanwhile.
    pub fn invoke_ret_at<R, F>(&self, dest: LocId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&RefCell<Rep>, &Location) -> R + Send + 'static,
    {
        self.loc.sync_rmi(dest, self.handle, f)
    }

    /// Split-phase method execution on `dest` (`invoke_opaque_ret`):
    /// returns a future immediately.
    pub fn invoke_split_at<R, F>(&self, dest: LocId, f: F) -> RmiFuture<R>
    where
        R: Send + 'static,
        F: FnOnce(&RefCell<Rep>, &Location) -> R + Send + 'static,
    {
        self.loc.split_rmi(dest, self.handle, f)
    }

    /// Broadcast-style asynchronous execution on every location (including
    /// this one). One-sided: peers need not participate.
    pub fn invoke_everywhere<F>(&self, f: F)
    where
        F: Fn(&RefCell<Rep>, &Location) + Clone + Send + 'static,
    {
        for dest in 0..self.loc.nlocs() {
            self.invoke_at(dest, f.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn register_and_local_access() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = PObject::register(loc, loc.id() * 7);
            assert_eq!(*obj.local(), loc.id() * 7);
            *obj.local_mut() += 1;
            assert_eq!(*obj.local(), loc.id() * 7 + 1);
        });
    }

    #[test]
    fn invoke_routes_to_destination() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = PObject::register(loc, Vec::<usize>::new());
            loc.rmi_fence();
            let me = loc.id();
            obj.invoke_at((me + 1) % loc.nlocs(), move |rep, _| rep.borrow_mut().push(me));
            loc.rmi_fence();
            let v = obj.local().clone();
            let expect = (loc.id() + loc.nlocs() - 1) % loc.nlocs();
            assert_eq!(v, vec![expect]);
        });
    }

    #[test]
    fn invoke_ret_and_split() {
        execute(RtsConfig::default(), 3, |loc| {
            let obj = PObject::register(loc, loc.id() as u64 * 11);
            loc.rmi_fence();
            let dest = (loc.id() + 2) % loc.nlocs();
            let sync = obj.invoke_ret_at(dest, |rep, _| *rep.borrow());
            assert_eq!(sync, dest as u64 * 11);
            let fut = obj.invoke_split_at(dest, |rep, _| *rep.borrow() + 1);
            assert_eq!(fut.get(), dest as u64 * 11 + 1);
        });
    }

    #[test]
    fn invoke_everywhere_reaches_all() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = PObject::register(loc, 0u64);
            loc.rmi_fence();
            if loc.id() == 0 {
                obj.invoke_everywhere(|rep, _| *rep.borrow_mut() += 1);
            }
            loc.rmi_fence();
            assert_eq!(*obj.local(), 1);
        });
    }

    #[test]
    fn clone_shares_representative() {
        execute(RtsConfig::default(), 1, |loc| {
            let obj = PObject::register(loc, 5i32);
            let other = obj.clone();
            *obj.local_mut() = 9;
            assert_eq!(*other.local(), 9);
            assert_eq!(obj.handle(), other.handle());
        });
    }

    #[test]
    fn handles_agree_across_locations() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PObject::register(loc, 1u8);
            let b = PObject::register(loc, 2u8);
            let handles = loc.allgather((a.handle(), b.handle()));
            assert!(handles.iter().all(|h| *h == handles[0]));
        });
    }
}
