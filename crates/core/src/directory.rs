//! Distributed GID directory for *dynamic* pContainers.
//!
//! Static containers resolve GID → (BCID, location) with a closed-form
//! partition. Dynamic containers (pList, dynamic pGraph) create and delete
//! elements at runtime, so the mapping is stored in a *directory*
//! distributed by GID hash: the *home* location of a GID records where the
//! element currently lives.
//!
//! Two resolution protocols are provided, matching the partitions compared
//! in Fig. 51:
//!
//! * **Forwarding** (the paper's method forwarding, Section V.C): the
//!   operation is shipped to the home location, which forwards it to the
//!   owner — one-way traffic, work migrates to the data.
//! * **Two-phase** ("no forwarding"): the requester synchronously asks the
//!   home for the owner, then ships the operation — an extra round trip.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use stapl_rts::{LocId, Location, RmiFuture};

use crate::gid::{Bcid, Gid};
use crate::pobject::PObject;

/// The home location of a GID: a hash spread over all locations.
pub fn home_of<G: Hash>(g: &G, nlocs: usize) -> LocId {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.hash(&mut h);
    (h.finish() as usize) % nlocs
}

/// One location's shard of the directory: entries for every GID whose home
/// is this location.
#[derive(Clone, Debug)]
pub struct DirectoryShard<G: Gid> {
    entries: HashMap<G, (Bcid, LocId)>,
}

impl<G: Gid> Default for DirectoryShard<G> {
    fn default() -> Self {
        DirectoryShard { entries: HashMap::new() }
    }
}

impl<G: Gid> DirectoryShard<G> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, g: G, bcid: Bcid, owner: LocId) {
        self.entries.insert(g, (bcid, owner));
    }

    pub fn remove(&mut self, g: &G) -> Option<(Bcid, LocId)> {
        self.entries.remove(g)
    }

    pub fn get(&self, g: &G) -> Option<(Bcid, LocId)> {
        self.entries.get(g).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes used — counted as container metadata.
    pub fn memory_size(&self) -> usize {
        self.entries.len()
            * (std::mem::size_of::<G>() + std::mem::size_of::<(Bcid, LocId)>() + std::mem::size_of::<u64>())
    }
}

/// Representatives that embed a directory shard for GID type `G`.
pub trait HasDirectory<G: Gid>: 'static {
    fn directory(&self) -> &DirectoryShard<G>;
    fn directory_mut(&mut self) -> &mut DirectoryShard<G>;
}

/// GID resolution protocol for dynamic containers (Fig. 51's comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Ship the operation to the home, which forwards it to the owner.
    Forwarding,
    /// Ask the home for the owner (synchronous), then ship the operation.
    TwoPhase,
}

/// Records `g` → (`bcid`, `owner`) at `g`'s home location. Asynchronous;
/// visible after the next fence.
pub fn dir_insert<Rep, G>(obj: &PObject<Rep>, g: G, bcid: Bcid, owner: LocId)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_at(home, move |rep, _| {
        rep.borrow_mut().directory_mut().insert(g, bcid, owner);
    });
}

/// Deletes `g`'s directory entry. Asynchronous.
pub fn dir_remove<Rep, G>(obj: &PObject<Rep>, g: G)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_at(home, move |rep, _| {
        rep.borrow_mut().directory_mut().remove(&g);
    });
}

/// Synchronously resolves `g` at its home.
pub fn dir_lookup<Rep, G>(obj: &PObject<Rep>, g: G) -> Option<(Bcid, LocId)>
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_ret_at(home, move |rep, _| rep.borrow().directory().get(&g))
}

/// Executes `f` on the location owning `g` (asynchronously), resolving
/// through the directory with the chosen protocol. `f` receives
/// `Some(bcid)` at the owner, or `None` (executed at the home for
/// `Forwarding`, at the caller for `TwoPhase`) when `g` is unknown.
pub fn dir_route<Rep, G, F>(obj: &PObject<Rep>, policy: Resolution, g: G, f: F)
where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    match policy {
        Resolution::Forwarding => {
            let home = home_of(&g, obj.location().nlocs());
            let handle = obj.handle();
            obj.invoke_at(home, move |rep, loc| {
                let entry = { rep.borrow().directory().get(&g) };
                match entry {
                    None => f(rep, loc, None),
                    Some((bcid, owner)) => {
                        if owner == loc.id() {
                            f(rep, loc, Some(bcid));
                        } else {
                            // Method forwarding: migrate the computation.
                            loc.async_rmi(owner, handle, move |rep2: &RefCell<Rep>, loc2| {
                                f(rep2, loc2, Some(bcid));
                            });
                        }
                    }
                }
            });
        }
        Resolution::TwoPhase => match dir_lookup(obj, g) {
            None => f(obj.rep_cell(), obj.location(), None),
            Some((bcid, owner)) => {
                obj.invoke_at(owner, move |rep, loc| f(rep, loc, Some(bcid)));
            }
        },
    }
}

/// Like [`dir_route`] but returns a value: the executing location replies
/// directly to the caller through a reply token, so forwarding chains cost
/// one response regardless of hop count.
pub fn dir_route_ret<Rep, G, R, F>(
    obj: &PObject<Rep>,
    policy: Resolution,
    g: G,
    f: F,
) -> RmiFuture<R>
where
    Rep: HasDirectory<G>,
    G: Gid,
    R: Send + 'static,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) -> R + Send + 'static,
{
    match policy {
        Resolution::Forwarding => {
            let (token, fut) = obj.location().make_reply_slot::<R>();
            dir_route(obj, policy, g, move |rep, loc, bcid| {
                let r = f(rep, loc, bcid);
                loc.reply(token, r);
            });
            fut
        }
        Resolution::TwoPhase => match dir_lookup(obj, g) {
            None => {
                let r = f(obj.rep_cell(), obj.location(), None);
                let (token, fut) = obj.location().make_reply_slot::<R>();
                obj.location().reply(token, r);
                fut
            }
            Some((bcid, owner)) => obj.invoke_split_at(owner, move |rep, loc| f(rep, loc, Some(bcid))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    struct Rep {
        dir: DirectoryShard<u64>,
        values: HashMap<u64, i64>, // elements living on this location
    }

    impl HasDirectory<u64> for Rep {
        fn directory(&self) -> &DirectoryShard<u64> {
            &self.dir
        }

        fn directory_mut(&mut self) -> &mut DirectoryShard<u64> {
            &mut self.dir
        }
    }

    fn setup(loc: &Location) -> PObject<Rep> {
        let obj = PObject::register(loc, Rep { dir: DirectoryShard::new(), values: HashMap::new() });
        loc.rmi_fence();
        // Each location owns gids congruent to its id mod nlocs, with
        // value gid*10; ownership is registered in the directory.
        for g in 0..64u64 {
            if g as usize % loc.nlocs() == loc.id() {
                obj.local_mut().values.insert(g, g as i64 * 10);
                dir_insert(&obj, g, loc.id(), loc.id());
            }
        }
        loc.rmi_fence();
        obj
    }

    #[test]
    fn shard_insert_lookup_remove() {
        let mut s = DirectoryShard::<u64>::new();
        assert!(s.is_empty());
        s.insert(4, 2, 1);
        assert_eq!(s.get(&4), Some((2, 1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(&4), Some((2, 1)));
        assert_eq!(s.get(&4), None);
    }

    #[test]
    fn home_is_stable_and_in_range() {
        for g in 0..100u64 {
            let h = home_of(&g, 7);
            assert!(h < 7);
            assert_eq!(h, home_of(&g, 7));
        }
    }

    #[test]
    fn lookup_resolves_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                let (bcid, owner) = dir_lookup(&obj, g).expect("registered");
                assert_eq!(owner, g as usize % loc.nlocs());
                assert_eq!(bcid, owner);
            }
            assert_eq!(dir_lookup(&obj, 1000), None);
        });
    }

    #[test]
    fn route_with_forwarding_executes_at_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                dir_route(&obj, Resolution::Forwarding, g, move |rep, loc2, bcid| {
                    assert_eq!(bcid, Some(g as usize % loc2.nlocs()));
                    *rep.borrow_mut().values.get_mut(&g).expect("must run at owner") += 1;
                });
            }
            loc.rmi_fence();
            for (g, v) in &obj.local().values {
                // 4 locations each routed one increment to every gid.
                assert_eq!(*v, *g as i64 * 10 + 4);
            }
        });
    }

    #[test]
    fn route_two_phase_executes_at_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in (loc.id() as u64..64).step_by(5) {
                dir_route(&obj, Resolution::TwoPhase, g, move |rep, _, _| {
                    *rep.borrow_mut().values.get_mut(&g).expect("must run at owner") -= 1;
                });
            }
            loc.rmi_fence();
            let bad = obj.local().values.iter().filter(|(g, v)| (**v - **g as i64 * 10) > 0).count();
            assert_eq!(bad, 0);
        });
    }

    #[test]
    fn route_ret_returns_value_through_forwarding() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                for policy in [Resolution::Forwarding, Resolution::TwoPhase] {
                    let v = dir_route_ret(&obj, policy, g, move |rep, _, _| {
                        rep.borrow().values[&g]
                    })
                    .get();
                    assert_eq!(v, g as i64 * 10);
                }
            }
        });
    }

    #[test]
    fn route_missing_gid_reports_none() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = setup(loc);
            let missing =
                dir_route_ret(&obj, Resolution::Forwarding, 9999, |_, _, bcid| bcid.is_none()).get();
            assert!(missing);
            let missing2 =
                dir_route_ret(&obj, Resolution::TwoPhase, 9999, |_, _, bcid| bcid.is_none()).get();
            assert!(missing2);
        });
    }

    #[test]
    fn migration_updates_routing() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = setup(loc);
            // Move gid 3 from its owner to location 0 and re-register.
            if loc.id() == 0 {
                let owner = dir_lookup(&obj, 3).unwrap().1;
                let v = obj
                    .invoke_ret_at(owner, |rep, _| rep.borrow_mut().values.remove(&3).unwrap());
                obj.local_mut().values.insert(3, v);
                dir_insert(&obj, 3, 0, 0);
            }
            loc.rmi_fence();
            let v = dir_route_ret(&obj, Resolution::Forwarding, 3, |rep, loc2, _| {
                assert_eq!(loc2.id(), 0);
                rep.borrow().values[&3]
            })
            .get();
            assert_eq!(v, 30);
        });
    }
}
