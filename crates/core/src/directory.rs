//! Distributed GID directory for *dynamic* pContainers.
//!
//! Static containers resolve GID → (BCID, location) with a closed-form
//! partition. Dynamic containers (pList, dynamic pGraph) create and delete
//! elements at runtime, so the mapping is stored in a *directory*
//! distributed by GID hash: the *home* location of a GID records where the
//! element currently lives.
//!
//! Two resolution protocols are provided, matching the partitions compared
//! in Fig. 51:
//!
//! * **Forwarding** (the paper's method forwarding, Section V.C): the
//!   operation is shipped to the home location, which forwards it to the
//!   owner — one-way traffic, work migrates to the data.
//! * **Two-phase** ("no forwarding"): the requester synchronously asks the
//!   home for the owner, then ships the operation — an extra round trip.
//!
//! ## The locality layer: per-location owner caches
//!
//! Both protocols pay the home hop on *every* access, including for keys a
//! location touches thousands of times in a row. The locality layer caches
//! resolved `gid → (bcid, owner)` mappings at the requesting location (an
//! [`OwnerCache`] embedded in the representative via
//! [`HasDirectory::owner_cache`]) and routes straight to the cached owner:
//!
//! * a **hit** skips the home hop entirely — O(1) messages per access;
//! * a **stale hit** (the element migrated since the entry was cached) is
//!   detected at the target with [`HasDirectory::owns_gid`] and
//!   *self-heals*: the target re-forwards the request through the
//!   authoritative home (the paper's forwarding chain makes executing a
//!   request after extra hops indistinguishable from executing it after
//!   one), and piggybacks an invalidation back to the requester;
//! * a **miss** resolves through the home as before, and the home sends
//!   the authoritative mapping back to the requester (a cache fill).
//!
//! Delivery through the home is verified the same way: if the
//! directory-recorded owner no longer stores the element (a
//! [`dir_migrate`] in flight), the request bounces back through the home
//! — boundedly — instead of executing against a missing element.
//!
//! Invalidation is three-tier: [`dir_insert`]/[`dir_remove`] update the
//! caller's own cache eagerly; stale hits invalidate point-wise; and bulk
//! moves (redistribute / rebalance) call [`dir_invalidate_all`], which
//! bumps the cache *epoch* — a collective O(1) drop-everything (dead
//! entries are evicted lazily). Stale entries are never a correctness
//! problem, only a latency one, which is what makes the protocol safe
//! without any coherence traffic.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use stapl_rts::{Handle, LocId, Location, RmiFuture, RtsConfig};

use crate::gid::{Bcid, Gid};
use crate::pobject::PObject;

/// The home location of a GID: a hash spread over all locations.
pub fn home_of<G: Hash>(g: &G, nlocs: usize) -> LocId {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    g.hash(&mut h);
    (h.finish() as usize) % nlocs
}

/// One location's shard of the directory: entries for every GID whose home
/// is this location.
#[derive(Clone, Debug)]
pub struct DirectoryShard<G: Gid> {
    entries: HashMap<G, (Bcid, LocId)>,
}

impl<G: Gid> Default for DirectoryShard<G> {
    fn default() -> Self {
        DirectoryShard { entries: HashMap::new() }
    }
}

impl<G: Gid> DirectoryShard<G> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, g: G, bcid: Bcid, owner: LocId) {
        self.entries.insert(g, (bcid, owner));
    }

    pub fn remove(&mut self, g: &G) -> Option<(Bcid, LocId)> {
        self.entries.remove(g)
    }

    pub fn get(&self, g: &G) -> Option<(Bcid, LocId)> {
        self.entries.get(g).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes used — counted as container metadata.
    pub fn memory_size(&self) -> usize {
        self.entries.len()
            * (std::mem::size_of::<G>() + std::mem::size_of::<(Bcid, LocId)>() + std::mem::size_of::<u64>())
    }
}

// ---------------------------------------------------------------------
// Owner cache
// ---------------------------------------------------------------------

/// A per-location cache of resolved `gid → (bcid, owner)` mappings with
/// epoch-based bulk invalidation, consulted by [`dir_route`] /
/// [`dir_route_ret`] before falling back to home-forwarding.
///
/// Entries are only ever *hints*: a stale entry routes the request to a
/// location that no longer owns the element, which re-forwards it through
/// the home (self-healing). The cache therefore needs no coherence
/// protocol — point-wise invalidations and the epoch are pure latency
/// optimizations.
#[derive(Debug)]
pub struct OwnerCache<G: Gid> {
    enabled: bool,
    capacity: usize,
    epoch: Cell<u64>,
    entries: RefCell<HashMap<G, (Bcid, LocId, u64)>>,
}

impl<G: Gid> OwnerCache<G> {
    /// A cache holding at most `capacity` entries; `enabled = false` makes
    /// every operation a no-op (the container then always home-routes).
    pub fn new(enabled: bool, capacity: usize) -> Self {
        OwnerCache {
            enabled: enabled && capacity > 0,
            capacity,
            epoch: Cell::new(0),
            entries: RefCell::new(HashMap::new()),
        }
    }

    /// A cache configured from the runtime's `dir_cache` /
    /// `dir_cache_capacity` knobs.
    pub fn from_config(cfg: &RtsConfig) -> Self {
        Self::new(cfg.dir_cache, cfg.dir_cache_capacity)
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current epoch; entries recorded under an older epoch are dead.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// The cached owner of `g`, if fresh.
    pub fn lookup(&self, g: &G) -> Option<(Bcid, LocId)> {
        if !self.enabled {
            return None;
        }
        let mut entries = self.entries.borrow_mut();
        match entries.get(g) {
            Some(&(bcid, owner, epoch)) if epoch == self.epoch.get() => Some((bcid, owner)),
            Some(_) => {
                entries.remove(g);
                None
            }
            None => None,
        }
    }

    /// Records an authoritative mapping. When the cache is full, entries
    /// from dead epochs are purged first; if it is still full, an
    /// arbitrary entry is evicted.
    pub fn record(&self, g: G, bcid: Bcid, owner: LocId) {
        if !self.enabled {
            return;
        }
        let epoch = self.epoch.get();
        let mut entries = self.entries.borrow_mut();
        if entries.len() >= self.capacity && !entries.contains_key(&g) {
            entries.retain(|_, &mut (_, _, e)| e == epoch);
            if entries.len() >= self.capacity {
                if let Some(&victim) = entries.keys().next() {
                    entries.remove(&victim);
                }
            }
        }
        entries.insert(g, (bcid, owner, epoch));
    }

    /// Drops the entry for `g`, if any.
    pub fn invalidate(&self, g: &G) {
        if self.enabled {
            self.entries.borrow_mut().remove(g);
        }
    }

    /// Invalidates every entry by advancing the epoch — O(1), the bulk
    /// invalidation used by redistribute / rebalance. Dead entries are
    /// evicted lazily: on lookup, and wholesale when an insert finds the
    /// cache full.
    pub fn bump_epoch(&self) {
        self.epoch.set(self.epoch.get() + 1);
    }

    /// Entries currently stored (stale ones are evicted lazily, so this
    /// may count entries a lookup would reject).
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Approximate bytes used — counted as container metadata.
    pub fn memory_size(&self) -> usize {
        self.entries.borrow().len()
            * (std::mem::size_of::<G>() + std::mem::size_of::<(Bcid, LocId, u64)>())
    }
}

/// Representatives that embed a directory shard for GID type `G`.
pub trait HasDirectory<G: Gid>: 'static {
    fn directory(&self) -> &DirectoryShard<G>;
    fn directory_mut(&mut self) -> &mut DirectoryShard<G>;

    /// The caller-side owner cache, when this container participates in the
    /// locality layer. The default (`None`) disables caching entirely.
    fn owner_cache(&self) -> Option<&OwnerCache<G>> {
        None
    }

    /// Whether the element `g` is currently stored on this representative.
    /// This is the delivery check of the locality layer: every routed
    /// request — optimistic (cached/hinted) *and* home-forwarded — is
    /// verified at its target, and a request landing where `g` no longer
    /// lives re-forwards through the home instead of executing against a
    /// missing element. Answer honestly; a blanket `true` opts out of
    /// verification (acceptable only for replicated state).
    fn owns_gid(&self, g: &G) -> bool;
}

/// GID resolution protocol for dynamic containers (Fig. 51's comparison).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Ship the operation to the home, which forwards it to the owner.
    Forwarding,
    /// Ask the home for the owner (synchronous), then ship the operation.
    TwoPhase,
}

/// Records `g` → (`bcid`, `owner`) at `g`'s home location. Asynchronous;
/// visible after the next fence. The caller's own owner cache is primed
/// eagerly (it just learned the authoritative mapping).
pub fn dir_insert<Rep, G>(obj: &PObject<Rep>, g: G, bcid: Bcid, owner: LocId)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    if let Some(c) = obj.rep_cell().borrow().owner_cache() {
        c.record(g, bcid, owner);
    }
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_at(home, move |rep, _| {
        rep.borrow_mut().directory_mut().insert(g, bcid, owner);
    });
}

/// Bulk [`dir_insert`]: registers every `(g, bcid, owner)` entry with
/// **one RMI per involved home location** instead of one per entry — the
/// registration half of segment-grained bulk creation. Asynchronous;
/// visible after the next fence; the caller's owner cache is primed
/// eagerly for every entry.
pub fn dir_insert_bulk<Rep, G>(obj: &PObject<Rep>, entries: Vec<(G, Bcid, LocId)>)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    if let Some(c) = obj.rep_cell().borrow().owner_cache() {
        for (g, bcid, owner) in &entries {
            c.record(*g, *bcid, *owner);
        }
    }
    let nlocs = obj.location().nlocs();
    let mut per_home: HashMap<LocId, Vec<(G, Bcid, LocId)>> = HashMap::new();
    for e in entries {
        per_home.entry(home_of(&e.0, nlocs)).or_default().push(e);
    }
    for (home, batch) in per_home {
        obj.invoke_at(home, move |rep, _| {
            let mut rep = rep.borrow_mut();
            let dir = rep.directory_mut();
            for (g, bcid, owner) in batch {
                dir.insert(g, bcid, owner);
            }
        });
    }
}

/// Deletes `g`'s directory entry. Asynchronous. The caller's own cached
/// owner for `g` is dropped eagerly.
pub fn dir_remove<Rep, G>(obj: &PObject<Rep>, g: G)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    if let Some(c) = obj.rep_cell().borrow().owner_cache() {
        c.invalidate(&g);
    }
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_at(home, move |rep, _| {
        rep.borrow_mut().directory_mut().remove(&g);
    });
}

/// Drops every cached owner this location holds for `obj` by bumping the
/// cache epoch. Call from every location of a collective bulk move
/// (redistribute / rebalance): each location invalidates its own cache in
/// O(1), no messages.
pub fn dir_invalidate_all<Rep, G>(obj: &PObject<Rep>)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    if let Some(c) = obj.rep_cell().borrow().owner_cache() {
        c.bump_epoch();
    }
}

/// Asynchronously migrates the element (or whole base container) behind
/// `g` to location `dest`: routes to the current owner, `extract`s the
/// payload there, ships it to `dest`, `install`s it, and only then
/// re-registers `(g → dest_bcid, dest)` at the home — so the directory
/// never points at a location the payload has not reached. The caches on
/// the old owner and (on their next access) every peer self-heal.
///
/// The move is visible after the next fence; operations on `g` concurrent
/// with the migration re-forward through the home (bounded) until the new
/// registration lands.
pub fn dir_migrate<Rep, G, P>(
    obj: &PObject<Rep>,
    policy: Resolution,
    g: G,
    dest: LocId,
    dest_bcid: Bcid,
    extract: impl FnOnce(&mut Rep) -> Option<P> + Send + 'static,
    install: impl FnOnce(&mut Rep, P) + Send + 'static,
) where
    Rep: HasDirectory<G>,
    G: Gid,
    P: Send + 'static,
{
    let handle = obj.handle();
    dir_route(obj, policy, g, move |cell, loc, found| {
        assert!(found.is_some(), "dir_migrate: {g:?} is not registered in the directory");
        if loc.id() == dest {
            return;
        }
        let payload = extract(&mut cell.borrow_mut());
        let Some(payload) = payload else { return };
        loc.note_migration(dest as u64);
        if let Some(c) = cell.borrow().owner_cache() {
            c.invalidate(&g);
        }
        loc.async_rmi(dest, handle, move |cell2: &RefCell<Rep>, loc2| {
            let me = loc2.id();
            install(&mut cell2.borrow_mut(), payload);
            if let Some(c) = cell2.borrow().owner_cache() {
                c.record(g, dest_bcid, me);
            }
            // Authoritative re-registration, strictly after landing.
            let home = home_of(&g, loc2.nlocs());
            loc2.async_rmi(home, handle, move |cell3: &RefCell<Rep>, _| {
                cell3.borrow_mut().directory_mut().insert(g, dest_bcid, me);
            });
        });
    });
}

/// Synchronously resolves `g` at its home.
pub fn dir_lookup<Rep, G>(obj: &PObject<Rep>, g: G) -> Option<(Bcid, LocId)>
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    let home = home_of(&g, obj.location().nlocs());
    obj.invoke_ret_at(home, move |rep, _| rep.borrow().directory().get(&g))
}

/// Consults the owner cache (with hit/miss accounting), falling back to a
/// caller-supplied static hint. Returns the guess — `(bcid, owner,
/// guess-came-from-cache)` — and whether caching is active for `obj`.
fn take_guess<Rep, G>(
    obj: &PObject<Rep>,
    g: &G,
    hint: Option<(Bcid, LocId)>,
) -> (Option<(Bcid, LocId, bool)>, bool)
where
    Rep: HasDirectory<G>,
    G: Gid,
{
    let rep = obj.rep_cell().borrow();
    let cache = rep.owner_cache().filter(|c| c.enabled());
    let cache_on = cache.is_some();
    if let Some(c) = cache {
        if let Some((bcid, owner)) = c.lookup(g) {
            obj.location().note_dir_cache_hit();
            return (Some((bcid, owner, true)), cache_on);
        }
        // A hinted route is still one-hop; only count a miss when the
        // request actually pays the home-location trip.
        if hint.is_none() {
            obj.location().note_dir_cache_miss();
        }
    }
    (hint.map(|(b, o)| (b, o, false)), cache_on)
}

/// Re-forward budget for requests that land where `g` no longer lives
/// (a migration in flight): each bounce goes back through the home, whose
/// pending ownership update is delivered as the bouncing locations drain
/// their queues. When the budget is exhausted the request executes at the
/// directory-recorded owner anyway (the pre-locality-layer behavior).
const FORWARD_RETRIES: u8 = 16;

/// Where a home-resolved request is headed: everything needed to verify
/// delivery and, on a mismatch, bounce back through the home.
#[derive(Clone, Copy)]
struct Delivery<G> {
    handle: Handle,
    g: G,
    bcid: Bcid,
    fill_to: Option<LocId>,
    retries: u8,
}

/// Executes `f` at a location the directory believes owns the GID, after
/// verifying with [`HasDirectory::owns_gid`] that it still does. On a
/// mismatch (migration in flight) the request re-forwards through the
/// home, `d.retries` more times at most; an exhausted budget executes `f`
/// where the directory pointed, as the un-verified protocol did.
fn deliver_verified<Rep, G, F>(rep: &RefCell<Rep>, loc: &Location, d: Delivery<G>, f: F)
where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    let owns = rep.borrow().owns_gid(&d.g);
    if owns || d.retries == 0 {
        f(rep, loc, Some(d.bcid));
    } else {
        send_via_home(loc, d.handle, d.g, d.fill_to, d.retries - 1, f);
    }
}

/// Ships `f` through `g`'s home location: the home resolves the
/// authoritative owner, optionally sends a cache fill to `fill_to`, and
/// forwards `f` to the owner — where delivery is verified (see
/// [`deliver_verified`]). `f` runs at the home with `None` when `g` is
/// unknown.
fn send_via_home<Rep, G, F>(
    loc: &Location,
    handle: Handle,
    g: G,
    fill_to: Option<LocId>,
    retries: u8,
    f: F,
) where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    let home = home_of(&g, loc.nlocs());
    loc.async_rmi(home, handle, move |rep: &RefCell<Rep>, hloc| {
        let entry = { rep.borrow().directory().get(&g) };
        match entry {
            None => f(rep, hloc, None),
            Some((bcid, owner)) => {
                match fill_to {
                    Some(req) if req == hloc.id() => {
                        if let Some(c) = rep.borrow().owner_cache() {
                            c.record(g, bcid, owner);
                        }
                    }
                    Some(req) => {
                        hloc.async_rmi(req, handle, move |r2: &RefCell<Rep>, _| {
                            if let Some(c) = r2.borrow().owner_cache() {
                                c.record(g, bcid, owner);
                            }
                        });
                    }
                    None => {}
                }
                let d = Delivery { handle, g, bcid, fill_to, retries };
                if owner == hloc.id() {
                    deliver_verified(rep, hloc, d, f);
                } else {
                    // Method forwarding: migrate the computation.
                    hloc.async_rmi(owner, handle, move |rep2: &RefCell<Rep>, loc2| {
                        deliver_verified(rep2, loc2, d, f);
                    });
                }
            }
        }
    });
}

/// Ships `f` straight to a guessed owner. The target confirms ownership
/// with [`HasDirectory::owns_gid`]; a stale guess self-heals by
/// re-forwarding through the home, piggybacking an invalidation back to
/// the requester when the guess came from its cache.
fn route_optimistic<Rep, G, F>(
    obj: &PObject<Rep>,
    g: G,
    bcid: Bcid,
    owner: LocId,
    from_cache: bool,
    fill_requester: bool,
    f: F,
) where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    let handle = obj.handle();
    let requester = obj.location().id();
    obj.invoke_at(owner, move |rep: &RefCell<Rep>, tloc| {
        let owns = rep.borrow().owns_gid(&g);
        if owns {
            f(rep, tloc, Some(bcid));
            return;
        }
        tloc.note_dir_cache_stale();
        if from_cache {
            if requester == tloc.id() {
                if let Some(c) = rep.borrow().owner_cache() {
                    c.invalidate(&g);
                }
            } else {
                tloc.async_rmi(requester, handle, move |r2: &RefCell<Rep>, _| {
                    if let Some(c) = r2.borrow().owner_cache() {
                        c.invalidate(&g);
                    }
                });
            }
        }
        send_via_home::<Rep, G, F>(
            tloc,
            handle,
            g,
            fill_requester.then_some(requester),
            FORWARD_RETRIES,
            f,
        );
    });
}

/// Executes `f` on the location owning `g` (asynchronously), resolving
/// through the directory with the chosen protocol. `f` receives
/// `Some(bcid)` at the owner, or `None` when `g` is unknown (executed at
/// the home for `Forwarding`, at the caller for `TwoPhase` — but see
/// [`dir_route_hinted`] for how optimistic routes shift this to the home).
pub fn dir_route<Rep, G, F>(obj: &PObject<Rep>, policy: Resolution, g: G, f: F)
where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    dir_route_hinted(obj, policy, g, None, f)
}

/// [`dir_route`] with a caller-supplied *static hint* — the container's
/// default (birth) owner of `g`, tried when the owner cache has no entry.
/// A wrong hint self-heals exactly like a stale cache hit, so containers
/// whose elements rarely move (e.g. pList base containers) get one-hop
/// routing without any cache warm-up.
///
/// With a guess in hand (cached or hinted) both policies route
/// identically; on a stale guess even `TwoPhase` heals through the
/// forwarding chain, and `f` runs at the *home* with `None` when `g` is
/// unknown.
pub fn dir_route_hinted<Rep, G, F>(
    obj: &PObject<Rep>,
    policy: Resolution,
    g: G,
    hint: Option<(Bcid, LocId)>,
    f: F,
) where
    Rep: HasDirectory<G>,
    G: Gid,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) + Send + 'static,
{
    let (guess, cache_on) = take_guess(obj, &g, hint);
    if let Some((bcid, owner, from_cache)) = guess {
        route_optimistic(obj, g, bcid, owner, from_cache, cache_on, f);
        return;
    }
    match policy {
        Resolution::Forwarding => {
            let me = obj.location().id();
            send_via_home(
                obj.location(),
                obj.handle(),
                g,
                cache_on.then_some(me),
                FORWARD_RETRIES,
                f,
            );
        }
        Resolution::TwoPhase => match dir_lookup(obj, g) {
            None => f(obj.rep_cell(), obj.location(), None),
            Some((bcid, owner)) => {
                if let Some(c) = obj.rep_cell().borrow().owner_cache() {
                    c.record(g, bcid, owner);
                }
                // Delivery is verified like any optimistic route: the
                // owner may have changed between the lookup and arrival.
                route_optimistic(obj, g, bcid, owner, cache_on, cache_on, f);
            }
        },
    }
}

/// Like [`dir_route`] but returns a value: the executing location replies
/// directly to the caller through a reply token, so forwarding chains cost
/// one response regardless of hop count.
pub fn dir_route_ret<Rep, G, R, F>(
    obj: &PObject<Rep>,
    policy: Resolution,
    g: G,
    f: F,
) -> RmiFuture<R>
where
    Rep: HasDirectory<G>,
    G: Gid,
    R: Send + 'static,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) -> R + Send + 'static,
{
    dir_route_ret_hinted(obj, policy, g, None, f)
}

/// [`dir_route_ret`] with a static default-owner hint; see
/// [`dir_route_hinted`].
pub fn dir_route_ret_hinted<Rep, G, R, F>(
    obj: &PObject<Rep>,
    policy: Resolution,
    g: G,
    hint: Option<(Bcid, LocId)>,
    f: F,
) -> RmiFuture<R>
where
    Rep: HasDirectory<G>,
    G: Gid,
    R: Send + 'static,
    F: FnOnce(&RefCell<Rep>, &Location, Option<Bcid>) -> R + Send + 'static,
{
    let (guess, cache_on) = take_guess(obj, &g, hint);
    if let Some((bcid, owner, from_cache)) = guess {
        let (token, fut) = obj.location().make_reply_slot::<R>();
        route_optimistic(obj, g, bcid, owner, from_cache, cache_on, move |rep, loc, b| {
            let r = f(rep, loc, b);
            loc.reply(token, r);
        });
        return fut;
    }
    match policy {
        Resolution::Forwarding => {
            let me = obj.location().id();
            let (token, fut) = obj.location().make_reply_slot::<R>();
            send_via_home(
                obj.location(),
                obj.handle(),
                g,
                cache_on.then_some(me),
                FORWARD_RETRIES,
                move |rep, loc, b| {
                    let r = f(rep, loc, b);
                    loc.reply(token, r);
                },
            );
            fut
        }
        Resolution::TwoPhase => match dir_lookup(obj, g) {
            None => RmiFuture::ready(f(obj.rep_cell(), obj.location(), None)),
            Some((bcid, owner)) => {
                if let Some(c) = obj.rep_cell().borrow().owner_cache() {
                    c.record(g, bcid, owner);
                }
                // Delivery is verified like any optimistic route: the
                // owner may have changed between the lookup and arrival.
                let (token, fut) = obj.location().make_reply_slot::<R>();
                route_optimistic(obj, g, bcid, owner, cache_on, cache_on, move |rep, loc, b| {
                    let r = f(rep, loc, b);
                    loc.reply(token, r);
                });
                fut
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, execute_collect, RtsConfig};

    struct Rep {
        dir: DirectoryShard<u64>,
        cache: OwnerCache<u64>,
        values: HashMap<u64, i64>, // elements living on this location
    }

    impl HasDirectory<u64> for Rep {
        fn directory(&self) -> &DirectoryShard<u64> {
            &self.dir
        }

        fn directory_mut(&mut self) -> &mut DirectoryShard<u64> {
            &mut self.dir
        }

        fn owner_cache(&self) -> Option<&OwnerCache<u64>> {
            Some(&self.cache)
        }

        fn owns_gid(&self, g: &u64) -> bool {
            self.values.contains_key(g)
        }
    }

    fn setup(loc: &Location) -> PObject<Rep> {
        let obj = PObject::register(
            loc,
            Rep {
                dir: DirectoryShard::new(),
                cache: OwnerCache::from_config(loc.config()),
                values: HashMap::new(),
            },
        );
        loc.rmi_fence();
        // Each location owns gids congruent to its id mod nlocs, with
        // value gid*10; ownership is registered in the directory.
        for g in 0..64u64 {
            if g as usize % loc.nlocs() == loc.id() {
                obj.local_mut().values.insert(g, g as i64 * 10);
                dir_insert(&obj, g, loc.id(), loc.id());
            }
        }
        loc.rmi_fence();
        obj
    }

    #[test]
    fn shard_insert_lookup_remove() {
        let mut s = DirectoryShard::<u64>::new();
        assert!(s.is_empty());
        s.insert(4, 2, 1);
        assert_eq!(s.get(&4), Some((2, 1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(&4), Some((2, 1)));
        assert_eq!(s.get(&4), None);
    }

    #[test]
    fn home_is_stable_and_in_range() {
        for g in 0..100u64 {
            let h = home_of(&g, 7);
            assert!(h < 7);
            assert_eq!(h, home_of(&g, 7));
        }
    }

    #[test]
    fn cache_basics_epoch_and_eviction() {
        let c = OwnerCache::<u64>::new(true, 2);
        assert!(c.is_empty());
        c.record(1, 0, 0);
        c.record(2, 1, 1);
        assert_eq!(c.lookup(&1), Some((0, 0)));
        assert_eq!(c.lookup(&2), Some((1, 1)));
        // Capacity bound: a third entry evicts one of the existing two.
        c.record(3, 2, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&3), Some((2, 2)));
        // Point invalidation.
        c.invalidate(&3);
        assert_eq!(c.lookup(&3), None);
        // Epoch bump kills every entry (lazily: the stale entry is evicted
        // on its next lookup).
        c.record(4, 3, 3);
        c.bump_epoch();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.lookup(&4), None);
        // Dead-epoch entries also yield to capacity pressure.
        c.record(5, 0, 0);
        c.record(6, 1, 1);
        c.bump_epoch();
        c.record(7, 2, 2);
        c.record(8, 3, 3);
        assert_eq!(c.lookup(&7), Some((2, 2)));
        assert_eq!(c.lookup(&8), Some((3, 3)));
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = OwnerCache::<u64>::new(false, 64);
        c.record(1, 0, 0);
        assert_eq!(c.lookup(&1), None);
        assert!(c.is_empty());
        let zero_cap = OwnerCache::<u64>::new(true, 0);
        assert!(!zero_cap.enabled());
    }

    #[test]
    fn lookup_resolves_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                let (bcid, owner) = dir_lookup(&obj, g).expect("registered");
                assert_eq!(owner, g as usize % loc.nlocs());
                assert_eq!(bcid, owner);
            }
            assert_eq!(dir_lookup(&obj, 1000), None);
        });
    }

    #[test]
    fn route_with_forwarding_executes_at_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                dir_route(&obj, Resolution::Forwarding, g, move |rep, loc2, bcid| {
                    assert_eq!(bcid, Some(g as usize % loc2.nlocs()));
                    *rep.borrow_mut().values.get_mut(&g).expect("must run at owner") += 1;
                });
            }
            loc.rmi_fence();
            for (g, v) in &obj.local().values {
                // 4 locations each routed one increment to every gid.
                assert_eq!(*v, *g as i64 * 10 + 4);
            }
        });
    }

    #[test]
    fn route_two_phase_executes_at_owner() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in (loc.id() as u64..64).step_by(5) {
                dir_route(&obj, Resolution::TwoPhase, g, move |rep, _, _| {
                    *rep.borrow_mut().values.get_mut(&g).expect("must run at owner") -= 1;
                });
            }
            loc.rmi_fence();
            let bad = obj.local().values.iter().filter(|(g, v)| (**v - **g as i64 * 10) > 0).count();
            assert_eq!(bad, 0);
        });
    }

    #[test]
    fn route_ret_returns_value_through_forwarding() {
        execute(RtsConfig::default(), 4, |loc| {
            let obj = setup(loc);
            for g in 0..64u64 {
                for policy in [Resolution::Forwarding, Resolution::TwoPhase] {
                    let v = dir_route_ret(&obj, policy, g, move |rep, _, _| {
                        rep.borrow().values[&g]
                    })
                    .get();
                    assert_eq!(v, g as i64 * 10);
                }
            }
        });
    }

    #[test]
    fn route_missing_gid_reports_none() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = setup(loc);
            let missing =
                dir_route_ret(&obj, Resolution::Forwarding, 9999, |_, _, bcid| bcid.is_none()).get();
            assert!(missing);
            let missing2 =
                dir_route_ret(&obj, Resolution::TwoPhase, 9999, |_, _, bcid| bcid.is_none()).get();
            assert!(missing2);
        });
    }

    #[test]
    fn migration_updates_routing() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = setup(loc);
            // Move gid 3 from its owner to location 0 and re-register.
            if loc.id() == 0 {
                let owner = dir_lookup(&obj, 3).unwrap().1;
                let v = obj
                    .invoke_ret_at(owner, |rep, _| rep.borrow_mut().values.remove(&3).unwrap());
                obj.local_mut().values.insert(3, v);
                dir_insert(&obj, 3, 0, 0);
            }
            loc.rmi_fence();
            let v = dir_route_ret(&obj, Resolution::Forwarding, 3, |rep, loc2, _| {
                assert_eq!(loc2.id(), 0);
                rep.borrow().values[&3]
            })
            .get();
            assert_eq!(v, 30);
        });
    }

    #[test]
    fn repeated_access_hits_cache_and_cuts_messages() {
        let run = |dir_cache: bool| {
            execute_collect(RtsConfig { dir_cache, ..RtsConfig::base() }, 4, |loc| {
                let obj = setup(loc);
                // Pick a hot gid owned by the next location and hammer it.
                let hot = (loc.id() as u64 + 1) % loc.nlocs() as u64;
                let before = loc.stats().remote_requests;
                for _ in 0..50 {
                    let v = dir_route_ret(&obj, Resolution::Forwarding, hot, move |rep, _, _| {
                        rep.borrow().values[&hot]
                    })
                    .get();
                    assert_eq!(v, hot as i64 * 10);
                }
                loc.rmi_fence();
                (loc.stats().remote_requests - before, loc.stats())
            })
            .remove(0)
        };
        let (cached_reqs, stats) = run(true);
        let (uncached_reqs, _) = run(false);
        // The fill arrives asynchronously, so the first few accesses may
        // miss; the vast majority must hit.
        assert!(stats.dir_cache_hits >= 40 * 4, "hot key must hit: {stats:?}");
        assert_eq!(stats.dir_cache_stale, 0);
        assert!(
            cached_reqs < uncached_reqs,
            "cached routing must send fewer remote requests: {cached_reqs} !< {uncached_reqs}"
        );
    }

    #[test]
    fn stale_cache_hit_self_heals_and_invalidates() {
        let snaps = execute_collect(RtsConfig { dir_cache: true, ..RtsConfig::base() }, 3, |loc| {
            let obj = setup(loc);
            // Location 0 warms its cache for gid 7 (owned by location 1).
            if loc.id() == 0 {
                let v =
                    dir_route_ret(&obj, Resolution::Forwarding, 7, |rep, _, _| rep.borrow().values[&7])
                        .get();
                assert_eq!(v, 70);
            }
            loc.rmi_fence();
            // Location 2 steals gid 7 from its owner.
            if loc.id() == 2 {
                let owner = dir_lookup(&obj, 7).unwrap().1;
                let v = obj.invoke_ret_at(owner, |rep, _| rep.borrow_mut().values.remove(&7).unwrap());
                obj.local_mut().values.insert(7, v);
                dir_insert(&obj, 7, 2, 2);
            }
            loc.rmi_fence();
            // Location 0's cached owner is now stale; the access must
            // self-heal through the home and still observe the value.
            if loc.id() == 0 {
                let v = dir_route_ret(&obj, Resolution::Forwarding, 7, |rep, loc2, _| {
                    assert_eq!(loc2.id(), 2, "must execute at the new owner");
                    rep.borrow().values[&7]
                })
                .get();
                assert_eq!(v, 70);
                // The stale entry was invalidated and re-filled by the
                // home; the next access goes straight to the new owner.
                let v2 = dir_route_ret(&obj, Resolution::Forwarding, 7, |rep, loc2, _| {
                    assert_eq!(loc2.id(), 2);
                    rep.borrow().values[&7]
                })
                .get();
                assert_eq!(v2, 70);
            }
            loc.rmi_fence();
            loc.stats()
        });
        assert!(snaps[0].dir_cache_stale >= 1, "the stale path must have fired: {:?}", snaps[0]);
    }

    #[test]
    fn hinted_route_skips_home_and_heals_wrong_hints() {
        execute(RtsConfig { dir_cache: false, ..RtsConfig::base() }, 2, |loc| {
            let obj = setup(loc);
            // Correct hint: straight to the owner, works with caching off.
            let owner1 = 1 % loc.nlocs();
            let v = dir_route_ret_hinted(
                &obj,
                Resolution::Forwarding,
                1,
                Some((owner1, owner1)),
                |rep, _, _| rep.borrow().values[&1],
            )
            .get();
            assert_eq!(v, 10);
            // Wrong hint: self-heals through the home.
            let wrong = (owner1 + 1) % loc.nlocs();
            let v = dir_route_ret_hinted(
                &obj,
                Resolution::Forwarding,
                1,
                Some((wrong, wrong)),
                |rep, loc2, _| {
                    assert_eq!(loc2.id(), 1 % loc2.nlocs());
                    rep.borrow().values[&1]
                },
            )
            .get();
            assert_eq!(v, 10);
        });
    }

    #[test]
    fn epoch_bump_invalidates_collectively() {
        execute(RtsConfig::default(), 2, |loc| {
            let obj = setup(loc);
            let peer_gid = (loc.id() as u64 + 1) % 2;
            let _ = dir_route_ret(&obj, Resolution::Forwarding, peer_gid, move |rep, _, _| {
                rep.borrow().values[&peer_gid]
            })
            .get();
            loc.rmi_fence();
            dir_invalidate_all(&obj);
            assert!(
                obj.local().cache.lookup(&peer_gid).is_none(),
                "bump must invalidate this location's cached owners"
            );
            // Routing still works after the bulk invalidation.
            let v = dir_route_ret(&obj, Resolution::Forwarding, peer_gid, move |rep, _, _| {
                rep.borrow().values[&peer_gid]
            })
            .get();
            assert_eq!(v, peer_gid as i64 * 10);
        });
    }
}
