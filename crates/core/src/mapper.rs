//! Partition mappers: sub-domain (BCID) → location (Table IX).
//!
//! The mapper decides where each base container is allocated. The paper
//! provides cyclic, blocked and general mappers; users can implement the
//! trait for machine-aware placements.

use stapl_rts::LocId;

use crate::gid::Bcid;

/// Maps BCIDs onto locations.
pub trait PartitionMapper: 'static {
    /// Location owning `bcid`.
    fn map(&self, bcid: Bcid) -> LocId;

    fn nlocs(&self) -> usize;

    fn clone_box(&self) -> Box<dyn PartitionMapper>;

    /// BCIDs (out of `num_bcids`) owned by `loc`, in increasing order.
    fn local_bcids(&self, loc: LocId, num_bcids: usize) -> Vec<Bcid> {
        (0..num_bcids).filter(|b| self.map(*b) == loc).collect()
    }
}

impl Clone for Box<dyn PartitionMapper> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Sub-domains dealt to locations round-robin: `bcid mod nlocs`.
/// With one sub-domain per location (the common case) this is the identity.
#[derive(Clone, Copy, Debug)]
pub struct CyclicMapper {
    nlocs: usize,
}

impl CyclicMapper {
    pub fn new(nlocs: usize) -> Self {
        assert!(nlocs >= 1);
        CyclicMapper { nlocs }
    }
}

impl PartitionMapper for CyclicMapper {
    fn map(&self, bcid: Bcid) -> LocId {
        bcid % self.nlocs
    }

    fn nlocs(&self) -> usize {
        self.nlocs
    }

    fn clone_box(&self) -> Box<dyn PartitionMapper> {
        Box::new(*self)
    }
}

/// `m / L` consecutive sub-domains per location.
#[derive(Clone, Copy, Debug)]
pub struct BlockedMapper {
    nlocs: usize,
    num_bcids: usize,
}

impl BlockedMapper {
    pub fn new(nlocs: usize, num_bcids: usize) -> Self {
        assert!(nlocs >= 1 && num_bcids >= 1);
        BlockedMapper { nlocs, num_bcids }
    }
}

impl PartitionMapper for BlockedMapper {
    fn map(&self, bcid: Bcid) -> LocId {
        let per = self.num_bcids.div_ceil(self.nlocs);
        (bcid / per).min(self.nlocs - 1)
    }

    fn nlocs(&self) -> usize {
        self.nlocs
    }

    fn clone_box(&self) -> Box<dyn PartitionMapper> {
        Box::new(*self)
    }
}

/// Arbitrary BCID → location table.
#[derive(Clone, Debug)]
pub struct GeneralMapper {
    nlocs: usize,
    assignment: Vec<LocId>,
}

impl GeneralMapper {
    pub fn new(nlocs: usize, assignment: Vec<LocId>) -> Self {
        assert!(assignment.iter().all(|&l| l < nlocs));
        GeneralMapper { nlocs, assignment }
    }
}

impl PartitionMapper for GeneralMapper {
    fn map(&self, bcid: Bcid) -> LocId {
        self.assignment[bcid]
    }

    fn nlocs(&self) -> usize {
        self.nlocs
    }

    fn clone_box(&self) -> Box<dyn PartitionMapper> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_mapper_wraps() {
        let m = CyclicMapper::new(4);
        assert_eq!(m.map(0), 0);
        assert_eq!(m.map(5), 1);
        assert_eq!(m.map(7), 3);
        assert_eq!(m.local_bcids(1, 8), vec![1, 5]);
    }

    #[test]
    fn blocked_mapper_groups_consecutive() {
        let m = BlockedMapper::new(2, 8);
        assert_eq!(m.local_bcids(0, 8), vec![0, 1, 2, 3]);
        assert_eq!(m.local_bcids(1, 8), vec![4, 5, 6, 7]);
    }

    #[test]
    fn blocked_mapper_uneven() {
        let m = BlockedMapper::new(3, 7); // per = 3
        assert_eq!(m.map(0), 0);
        assert_eq!(m.map(3), 1);
        assert_eq!(m.map(6), 2);
        // All locations used, all bcids mapped in-range.
        for b in 0..7 {
            assert!(m.map(b) < 3);
        }
    }

    #[test]
    fn general_mapper_is_arbitrary() {
        let m = GeneralMapper::new(3, vec![2, 0, 2, 1]);
        assert_eq!(m.map(0), 2);
        assert_eq!(m.map(3), 1);
        assert_eq!(m.local_bcids(2, 4), vec![0, 2]);
    }

    #[test]
    #[should_panic]
    fn general_mapper_rejects_out_of_range() {
        GeneralMapper::new(2, vec![0, 2]);
    }

    #[test]
    fn paper_fig10_deployment() {
        // Fig. 10: 4 sub-domains on 2 locations, cyclic:
        // D0->L0, D1->L1, D2->L0, D3->L1.
        let m = CyclicMapper::new(2);
        assert_eq!((0..4).map(|b| m.map(b)).collect::<Vec<_>>(), vec![0, 1, 0, 1]);
    }
}
