//! Container-concept interfaces (the specifications of Tables XI–XVIII),
//! expressed as traits so pViews and pAlgorithms stay generic over
//! containers.

use stapl_rts::{Location, RmiFuture};

use crate::bcontainer::MemSize;
use crate::distribution::GidRun;
use crate::domain::Range1d;
use crate::gid::{Bcid, Gid};
use crate::partition::IndexSubDomain;

/// Base pContainer interface (Table XI): a distributed object with a
/// (possibly lazily tracked) global size.
pub trait PContainer {
    /// The location this handle lives on.
    fn location(&self) -> &Location;

    /// Number of elements, globally. For dynamic containers this may be a
    /// cached value refreshed by [`PContainer::commit`] (the paper's lazy
    /// replicated size, Chapter VII.G).
    fn global_size(&self) -> usize;

    /// Number of elements stored on this location.
    fn local_size(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.global_size() == 0
    }

    /// **Collective.** Synchronization point for dynamic containers: drains
    /// pending structural operations (via fence) and refreshes replicated
    /// metadata such as the cached global size — the paper's
    /// `post_execute()` hook. A no-op beyond the fence for static ones.
    fn commit(&self) {
        self.location().rmi_fence();
    }

    /// **Collective.** Global (metadata, data) memory footprint in bytes.
    fn memory_size(&self) -> MemSize {
        MemSize::default()
    }
}

/// Element read access by GID (read side of Tables XII/XIV).
pub trait ElementRead<G: Gid>: PContainer {
    type Value: Send + Clone + 'static;

    /// Synchronous read (the paper's `get_element`): blocks until the value
    /// is available.
    fn get_element(&self, g: G) -> Self::Value;

    /// Split-phase read (`split_phase_get_element`): returns a future.
    fn split_get_element(&self, g: G) -> RmiFuture<Self::Value>;

    /// True when the element lives on this location.
    fn is_local(&self, g: G) -> bool;
}

/// Element write access by GID (write side of Tables XII/XIV).
pub trait ElementWrite<G: Gid>: ElementRead<G> {
    /// Asynchronous write (`set_element`): returns immediately; completion
    /// guaranteed by the next fence, ordered with respect to other
    /// operations from this location on the same element.
    fn set_element(&self, g: G, v: Self::Value);

    /// Asynchronously applies `f` to the element (`apply_set`). Executes at
    /// the owner — the building block for read-modify-write without a
    /// round trip.
    fn apply_set<F>(&self, g: G, f: F)
    where
        F: FnOnce(&mut Self::Value) + Send + 'static;

    /// Synchronously applies `f` and returns its result (`apply_get`).
    fn apply_get<R, F>(&self, g: G, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Self::Value) -> R + Send + 'static;
}

/// Iteration over the elements stored on this location, in local
/// linearization order. The fast path used by native views: no RMI.
pub trait LocalIteration<G: Gid>: ElementRead<G> {
    fn for_each_local(&self, f: impl FnMut(G, &Self::Value));

    fn for_each_local_mut(&self, f: impl FnMut(G, &mut Self::Value));

    /// Short-circuiting local iteration: stops visiting elements as soon as
    /// `f` returns `false`. The default is correct but does not exit early
    /// (it keeps walking with `f` suppressed); containers with cheap
    /// storage-level early exit override it so scans like `p_find_if` stop
    /// at the first local match.
    fn try_for_each_local(&self, mut f: impl FnMut(G, &Self::Value) -> bool) {
        let mut go = true;
        self.for_each_local(|g, v| {
            if go {
                go = f(g, v);
            }
        });
    }

    /// Calls `f` over the maximal contiguous *storage* slices holding this
    /// location's elements, when the container can expose them; returns
    /// `false` when it cannot (per-element storage, non-slice layouts) and
    /// the caller must fall back to element-wise iteration. One call per
    /// slice lets algorithms like `p_fill` pay one clone + one borrow per
    /// chunk instead of per element.
    fn try_local_slices_mut(&self, f: &mut dyn FnMut(&mut [Self::Value])) -> bool {
        let _ = f;
        false
    }
}

/// Static indexed pContainers (pArray, pMatrix rows flattened, pVector
/// between rebalances): GIDs are dense indices `[0, n)` and the partition
/// exposes per-location sub-domains (Table XIV).
pub trait IndexedContainer: ElementWrite<usize> + LocalIteration<usize> {
    /// (BCID, sub-domain) pairs owned by this location, ascending by BCID.
    fn local_subdomains(&self) -> Vec<(Bcid, IndexSubDomain)>;
}

/// Indexed containers with **bulk-range transport** (the localization
/// layer's container half): contiguous GID ranges move as one RMI per
/// (owner, storage-contiguous run) instead of one boxed request per
/// element, and fully-local runs are served by a direct slice borrow —
/// one `RefCell` borrow per chunk. This is the coarsening the paper's
/// localized views rely on to run pAlgorithms at sequential speed.
///
/// The crossover between bulk and element-wise remote transport is
/// `RtsConfig::bulk_threshold` (`STAPL_BULK_THRESHOLD`): remote runs
/// shorter than the threshold fall back to element RMIs (which the
/// aggregation layer batches anyway). Instrumentation: bulk RMIs bump
/// `bulk_requests`, direct slice borrows bump `localized_chunks`, and
/// every element-wise fallback bumps `element_fallbacks`.
pub trait RangedContainer: IndexedContainer {
    /// Decomposes `[r.lo, r.hi)` into its maximal storage-contiguous runs
    /// in GID order (O(runs), replicated metadata only — no communication).
    fn runs(&self, r: Range1d) -> Vec<GidRun>;

    /// The storage-contiguous pieces of *this location's* sub-domains,
    /// ascending by BCID — the chunk decomposition localized algorithms
    /// and views walk. One (bcid, GID-range) pair per maximal
    /// slice-backed run.
    fn local_pieces(&self) -> Vec<(Bcid, Range1d)> {
        let mut out = Vec::new();
        for (bcid, sd) in self.local_subdomains() {
            for piece in sd.contiguous_pieces() {
                out.push((bcid, piece));
            }
        }
        out
    }

    /// Monotone counter bumped whenever element placement changes
    /// (redistribute, rebalance, commit). Layers that memoize placement —
    /// view localization caches — compare epochs to invalidate.
    fn distribution_epoch(&self) -> u64;

    /// Bulk read of `[r.lo, r.hi)` in GID order: one RMI per remote run,
    /// one slice borrow per local run.
    fn get_range(&self, r: Range1d) -> Vec<Self::Value>;

    /// Bulk write of `vals` to GIDs `lo..lo + vals.len()`: asynchronous
    /// (complete by the next fence), one RMI per remote run.
    fn set_range(&self, lo: usize, vals: Vec<Self::Value>) {
        self.set_range_slice(lo, &vals);
    }

    /// [`RangedContainer::set_range`] from a borrowed slice; only the
    /// remote chunks are copied out of `vals`.
    fn set_range_slice(&self, lo: usize, vals: &[Self::Value]);

    /// Owner-side bulk read-modify-write: applies `f(gid, &mut value)`
    /// over the range, shipping one closure per remote run
    /// (asynchronous, like [`ElementWrite::apply_set`]).
    fn apply_range<F>(&self, r: Range1d, f: F)
    where
        F: Fn(usize, &mut Self::Value) + Clone + Send + 'static;

    /// Direct borrow of the local contiguous storage backing `gids`
    /// (which must be one storage-contiguous run inside `bcid`, as
    /// produced by [`RangedContainer::runs`]). `None` when the run is not
    /// on this location or the storage cannot expose a slice (e.g. boxed
    /// per-element allocation) — callers fall back to
    /// [`RangedContainer::get_range`].
    fn with_slice<R>(
        &self,
        bcid: Bcid,
        gids: Range1d,
        f: impl FnOnce(&[Self::Value]) -> R,
    ) -> Option<R>;

    /// Mutable counterpart of [`RangedContainer::with_slice`].
    fn with_slice_mut<R>(
        &self,
        bcid: Bcid,
        gids: Range1d,
        f: impl FnOnce(&mut [Self::Value]) -> R,
    ) -> Option<R>;
}

/// Dynamic pContainers (Table XIII): element insertion/removal at runtime.
pub trait DynamicPContainer: PContainer {
    /// **Collective.** Removes all elements; distribution stays valid.
    fn clear(&self);
}

/// Identifier of one base-container *segment* of a dynamic container: the
/// pList slab, pAssoc bucket, or pGraph vertex-partition BCID.
pub type SegmentId = Bcid;

/// Dynamic containers with **segment-at-a-time bulk transport** — the
/// non-indexed sibling of [`RangedContainer`]. Dynamic containers have no
/// dense GID ranges to coarsen over, but they *are* organized as base
/// containers, so a whole base container (a pList slab, a pAssoc bucket,
/// a pGraph vertex partition) can move as **one RMI per (owner, segment)**
/// instead of one boxed request per element, and local segments are
/// served by a direct borrow (one `RefCell` borrow per segment).
///
/// Items travel as `(key, payload)` pairs, where the key is the item's
/// stable identifier *within* the container (pList sequence number, pAssoc
/// key, pGraph vertex descriptor) so segmented writes can address existing
/// items. Instrumentation: remote segment RMIs bump `segment_requests`,
/// direct borrows bump `localized_chunks`.
pub trait SegmentedContainer: PContainer {
    /// Stable per-item identifier (pList `(bcid, seq)`'s sequence number,
    /// pAssoc key, pGraph vertex descriptor).
    type ItemKey: Send + Clone + 'static;
    /// The transported per-item payload.
    type ItemVal: Send + Clone + 'static;

    /// All segment ids of the container, ascending — replicated metadata,
    /// no communication. Segments may currently live anywhere.
    fn segments(&self) -> Vec<SegmentId>;

    /// Segment ids currently stored on this location, ascending.
    fn local_segments(&self) -> Vec<SegmentId>;

    /// True when `sid` is stored on this location (no communication).
    fn is_local_segment(&self, sid: SegmentId) -> bool {
        self.local_segments().contains(&sid)
    }

    /// Monotone counter bumped whenever this location's segment placement
    /// changes (slab/vertex migration, rebalance, clear). Layers that
    /// memoize placement compare epochs to invalidate; the counter is
    /// per-location knowledge — peers not party to a migration self-heal
    /// through the directory instead.
    fn segment_epoch(&self) -> u64;

    /// Bulk read of a whole segment in segment order: one RMI when the
    /// segment is remote, one borrow when local.
    fn get_segment(&self, sid: SegmentId) -> Vec<(Self::ItemKey, Self::ItemVal)>;

    /// Asynchronous bulk insert of `items` into segment `sid`: one RMI per
    /// (owner, segment), complete by the next fence. Sequence containers
    /// append in order under fresh keys (the given keys are advisory);
    /// associative/relational containers insert-or-overwrite under the
    /// given keys.
    fn append_segment(&self, sid: SegmentId, items: Vec<(Self::ItemKey, Self::ItemVal)>);

    /// Asynchronous bulk write of the payloads of *existing* items named
    /// by the keys (absent keys are skipped) — the segmented sibling of
    /// `set_element`, one RMI per (owner, segment).
    fn set_segment(&self, sid: SegmentId, items: Vec<(Self::ItemKey, Self::ItemVal)>);

    /// Asynchronous owner-side read-modify-write over every item of the
    /// segment: ships one closure per (owner, segment) — the property-
    /// sweep primitive.
    fn apply_segment<F>(&self, sid: SegmentId, f: F)
    where
        F: Fn(&Self::ItemKey, &mut Self::ItemVal) + Clone + Send + 'static;

    /// Visits each (key, payload) of a **local** segment in segment order
    /// under a single borrow — the direct-borrow fast path (no clone, no
    /// RMI). Returns `false` without calling `f` when the segment is not
    /// on this location; callers fall back to
    /// [`SegmentedContainer::get_segment`].
    fn with_segment(
        &self,
        sid: SegmentId,
        f: &mut dyn FnMut(&Self::ItemKey, &Self::ItemVal),
    ) -> bool;

    /// Chunk-at-a-time traversal of this location's segments: one call
    /// per local segment with its (key, payload) pairs materialized once
    /// (one borrow, one allocation per segment) — the traversal the
    /// chunked views build on.
    fn for_each_local_chunk(&self, mut f: impl FnMut(SegmentId, &[(Self::ItemKey, Self::ItemVal)]))
    where
        Self: Sized,
    {
        for sid in self.local_segments() {
            let mut pairs = Vec::new();
            self.with_segment(sid, &mut |k, v| pairs.push((k.clone(), v.clone())));
            f(sid, &pairs);
        }
    }

    /// Mutable counterpart of [`SegmentedContainer::with_segment`].
    fn with_segment_mut(
        &self,
        sid: SegmentId,
        f: &mut dyn FnMut(&Self::ItemKey, &mut Self::ItemVal),
    ) -> bool;
}

/// Associative pContainers (Table XVI): key → value storage.
pub trait AssociativeContainer<K: crate::gid::Key>: PContainer {
    type Mapped: Send + Clone + 'static;

    /// Asynchronous insert (last write wins on duplicate keys, as the
    /// paper's pMap overwrite semantics).
    fn insert_async(&self, k: K, v: Self::Mapped);

    /// Asynchronous erase (`erase_async`).
    fn erase_async(&self, k: K);

    /// Synchronous lookup (`find_val`): `None` when absent.
    fn find(&self, k: K) -> Option<Self::Mapped>;

    /// Split-phase lookup (`split_phase_find`).
    fn split_find(&self, k: K) -> RmiFuture<Option<Self::Mapped>>;

    /// True when the key exists (synchronous).
    fn contains(&self, k: K) -> bool {
        self.find(k).is_some()
    }
}

/// Sequence pContainers (Table XVIII): pList, pVector.
pub trait SequenceContainer<G: Gid>: ElementRead<G> {
    /// Append at the global end of the sequence.
    fn push_back(&self, v: Self::Value);

    /// Prepend at the global front.
    fn push_front(&self, v: Self::Value);

    /// Add at an unspecified position chosen for locality/load — the
    /// paper's `push_anywhere`, its scalable flagship method.
    fn push_anywhere(&self, v: Self::Value);

    /// Insert before the element identified by `g` (asynchronous).
    fn insert_before_async(&self, g: G, v: Self::Value);

    /// Erase the element identified by `g` (asynchronous).
    fn erase_async(&self, g: G);
}

/// Relational pContainers (Table XVII) are specified in
/// `stapl-containers::graph` where the vertex/edge types live; this marker
/// records membership in the taxonomy of Fig. 5.
pub trait RelationalContainer: PContainer {}
