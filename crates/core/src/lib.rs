//! # stapl-core — the Parallel Container Framework (PCF)
//!
//! This crate reproduces Chapters IV–VII of *The STAPL Parallel Container
//! Framework*: the concepts and modules from which pContainers are
//! assembled.
//!
//! A pContainer `pC = (C, D, F, O, S)` (Definition 1) is put together from:
//!
//! * **GIDs** ([`gid`]) — globally unique element identifiers;
//! * **domains** ([`domain`]) — the set of GIDs, usually totally ordered;
//! * **partitions** ([`partition`]) — domain → ordered sub-domains;
//! * **partition mappers** ([`mapper`]) — sub-domain → location;
//! * **base containers** ([`bcontainer`]) — per-sub-domain sequential
//!   storage behind a minimal uniform interface;
//! * **a location manager** ([`location_manager`]) — the local collection
//!   of base containers;
//! * **a data-distribution manager** ([`distribution`]) — replicated
//!   partition + mapper answering "where does GID g live?";
//! * **a directory** ([`directory`]) — the dynamic-container resolution
//!   path with method forwarding;
//! * **a thread-safety layer** ([`thread_safety`]) — per-method locking
//!   policies dispatched through pluggable managers;
//! * **the `PObject` base** ([`pobject`]) — SPMD registration and the
//!   `invoke` / `invoke_ret` / `invoke_split` execution skeleton (Fig. 8).
//!
//! The container library built from these parts lives in
//! `stapl-containers`; views and algorithms in `stapl-views` and
//! `stapl-algorithms`.
//!
//! ## Memory consistency model (Chapter VII)
//!
//! The guarantees the containers give — and tests in this workspace
//! verify — are exactly the paper's default MCM:
//!
//! 1. asynchronous methods complete by the next `rmi_fence`;
//! 2. methods issued by one location on one element execute in program
//!    order (per-pair FIFO channels + owner-side sequential execution);
//! 3. a synchronous or split-phase method on element `x` observes every
//!    earlier same-location method on `x`;
//! 4. no ordering holds across different elements or different sources —
//!    the model is *not* sequentially or processor consistent (Dekker's
//!    algorithm can read two zeros, see `tests/mcm.rs`), but using only
//!    synchronous methods restores sequential consistency.

pub mod bcontainer;
pub mod directory;
pub mod distribution;
pub mod domain;
pub mod gid;
pub mod interfaces;
pub mod location_manager;
pub mod mapper;
pub mod partition;
pub mod pobject;
pub mod thread_safety;

pub mod prelude {
    pub use crate::bcontainer::{BaseContainer, MemSize};
    pub use crate::directory::{
        dir_insert, dir_invalidate_all, dir_lookup, dir_migrate, dir_remove, dir_route,
        dir_route_hinted, dir_route_ret, dir_route_ret_hinted, home_of, DirectoryShard,
        HasDirectory, OwnerCache, Resolution,
    };
    pub use crate::distribution::{IndexDistribution, KeyDistribution};
    pub use crate::domain::{
        ComposedDomain, Domain, EnumeratedDomain, FilteredDomain, FiniteDomain, KeyDomain,
        OrderedDomain, Range1d, Range2d,
    };
    pub use crate::gid::{Bcid, Gid, Key};
    pub use crate::interfaces::{
        AssociativeContainer, DynamicPContainer, ElementRead, ElementWrite, IndexedContainer,
        LocalIteration, PContainer, RelationalContainer, SequenceContainer,
    };
    pub use crate::location_manager::LocationManager;
    pub use crate::mapper::{BlockedMapper, CyclicMapper, GeneralMapper, PartitionMapper};
    pub use crate::partition::{
        BalancedPartition, BlockCyclicPartition, BlockedPartition, ExplicitPartition,
        HashPartition, IndexPartition, IndexSubDomain, KeyPartition, MatrixLayout,
        MatrixPartition, SplitterPartition,
    };
    pub use crate::pobject::PObject;
    pub use crate::thread_safety::{
        methods, AccessMode, DataGuard, GlobalMutexManager, HashedLockManager, LockGranularity,
        LockingPolicyTable, MethodId, MethodPolicy, NoLockManager, RwLockManager, ThreadSafety,
        ThreadSafetyManager, ThsInfo,
    };
}
