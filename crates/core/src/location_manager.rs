//! The location manager (Table IV): administers the base containers of a
//! pContainer that are mapped to one location.

use std::collections::BTreeMap;

use crate::bcontainer::{BaseContainer, MemSize};
use crate::gid::Bcid;

/// Per-location owner of a pContainer's local base containers, keyed by
/// globally unique BCID. A `BTreeMap` keeps local iteration in BCID order,
/// which — combined with an ordered partition — yields the container's
/// linearization restricted to this location.
pub struct LocationManager<B> {
    bcontainers: BTreeMap<Bcid, B>,
}

impl<B> Default for LocationManager<B> {
    fn default() -> Self {
        LocationManager { bcontainers: BTreeMap::new() }
    }
}

impl<B> LocationManager<B> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a base container under `bcid`.
    ///
    /// # Panics
    /// Panics if `bcid` is already present.
    pub fn add_bcontainer(&mut self, bcid: Bcid, bc: B) {
        let prev = self.bcontainers.insert(bcid, bc);
        assert!(prev.is_none(), "bcid {bcid} already managed on this location");
    }

    /// Removes and returns the base container under `bcid`.
    pub fn remove_bcontainer(&mut self, bcid: Bcid) -> Option<B> {
        self.bcontainers.remove(&bcid)
    }

    /// Number of local base containers.
    pub fn num_bcontainers(&self) -> usize {
        self.bcontainers.len()
    }

    pub fn get(&self, bcid: Bcid) -> Option<&B> {
        self.bcontainers.get(&bcid)
    }

    pub fn get_mut(&mut self, bcid: Bcid) -> Option<&mut B> {
        self.bcontainers.get_mut(&bcid)
    }

    /// Local base containers in BCID order.
    pub fn iter(&self) -> impl Iterator<Item = (Bcid, &B)> {
        self.bcontainers.iter().map(|(b, c)| (*b, c))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Bcid, &mut B)> {
        self.bcontainers.iter_mut().map(|(b, c)| (*b, c))
    }

    pub fn bcids(&self) -> impl Iterator<Item = Bcid> + '_ {
        self.bcontainers.keys().copied()
    }
}

impl<B: BaseContainer> LocationManager<B> {
    /// Total elements stored locally.
    pub fn local_len(&self) -> usize {
        self.bcontainers.values().map(|b| b.len()).sum()
    }

    pub fn local_is_empty(&self) -> bool {
        self.bcontainers.values().all(|b| b.is_empty())
    }

    /// Clears every local base container (keeps the bContainers themselves,
    /// as the paper's `clear` keeps the distribution valid).
    pub fn clear(&mut self) {
        for b in self.bcontainers.values_mut() {
            b.clear();
        }
    }

    /// Local memory usage; the manager's own bookkeeping is metadata.
    pub fn memory_size(&self) -> MemSize {
        let mut m: MemSize = self.bcontainers.values().map(|b| b.memory_size()).sum();
        m.metadata += self.bcontainers.len()
            * (std::mem::size_of::<Bcid>() + 3 * std::mem::size_of::<usize>());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecBc(Vec<u32>);

    impl BaseContainer for VecBc {
        type Value = u32;

        fn len(&self) -> usize {
            self.0.len()
        }

        fn clear(&mut self) {
            self.0.clear();
        }

        fn memory_size(&self) -> MemSize {
            MemSize::new(std::mem::size_of::<Vec<u32>>(), self.0.len() * 4)
        }
    }

    #[test]
    fn add_get_remove() {
        let mut lm = LocationManager::new();
        lm.add_bcontainer(3, VecBc(vec![1, 2]));
        lm.add_bcontainer(1, VecBc(vec![3]));
        assert_eq!(lm.num_bcontainers(), 2);
        assert_eq!(lm.get(3).unwrap().0, vec![1, 2]);
        assert!(lm.get(0).is_none());
        assert_eq!(lm.local_len(), 3);
        let removed = lm.remove_bcontainer(1).unwrap();
        assert_eq!(removed.0, vec![3]);
        assert_eq!(lm.num_bcontainers(), 1);
    }

    #[test]
    fn iteration_is_bcid_ordered() {
        let mut lm = LocationManager::new();
        for b in [5, 1, 3] {
            lm.add_bcontainer(b, VecBc(vec![b as u32]));
        }
        let order: Vec<Bcid> = lm.iter().map(|(b, _)| b).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "already managed")]
    fn duplicate_bcid_panics() {
        let mut lm = LocationManager::new();
        lm.add_bcontainer(0, VecBc(vec![]));
        lm.add_bcontainer(0, VecBc(vec![]));
    }

    #[test]
    fn clear_keeps_bcontainers() {
        let mut lm = LocationManager::new();
        lm.add_bcontainer(0, VecBc(vec![1, 2, 3]));
        lm.clear();
        assert_eq!(lm.num_bcontainers(), 1);
        assert!(lm.local_is_empty());
    }

    #[test]
    fn memory_size_accumulates() {
        let mut lm = LocationManager::new();
        lm.add_bcontainer(0, VecBc(vec![0; 10]));
        lm.add_bcontainer(1, VecBc(vec![0; 6]));
        let m = lm.memory_size();
        assert_eq!(m.data, 64);
        assert!(m.metadata > 0);
    }
}
