//! Global identifiers (GIDs).
//!
//! Every pContainer element has a unique GID; the GID is what provides the
//! shared-object abstraction (Chapter V.C): all references to an element,
//! from any location, use the same GID. Indices are GIDs for pArray,
//! (row, col) pairs for pMatrix, keys for pMap, vertex descriptors for
//! pGraph, and stable (bcid, sequence) pairs for pList.

use std::fmt::Debug;
use std::hash::Hash;

/// The bound every GID type must satisfy: cheap to copy, shippable across
/// locations, hashable (for directories), and comparable for identity.
pub trait Gid: Copy + Send + Eq + Hash + Debug + 'static {}

impl<T: Copy + Send + Eq + Hash + Debug + 'static> Gid for T {}

/// The bound for associative-container keys: like [`Gid`] but only
/// `Clone` (keys such as `String` are not `Copy`).
pub trait Key: Clone + Send + Eq + Hash + Debug + 'static {}

impl<T: Clone + Send + Eq + Hash + Debug + 'static> Key for T {}

/// Identifier of a base container (sub-domain) within a pContainer.
/// BCIDs are globally unique within one container and dense from zero for
/// static partitions.
pub type Bcid = usize;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_gid<G: Gid>() {}

    #[test]
    fn common_types_are_gids() {
        assert_gid::<usize>();
        assert_gid::<(usize, usize)>();
        assert_gid::<u64>();
        assert_gid::<i32>();
        assert_gid::<[u8; 4]>();
    }
}
