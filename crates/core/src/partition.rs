//! Partitions: decompositions of a domain into sub-domains
//! (Chapter IV.B.4–5 and the interfaces of Tables VII, VIII and XV).
//!
//! A partition groups a container's elements into units of storage: one
//! sub-domain per base container. Partitions of totally ordered domains are
//! *ordered partitions* (Definition 10): the sub-domain sequence preserves
//! the element order, which is what lets a pContainer linearize its data.

use std::hash::{Hash, Hasher};

use crate::domain::{Domain, Range1d};
use crate::gid::Bcid;

// ---------------------------------------------------------------------
// Sub-domains of 1-D index partitions
// ---------------------------------------------------------------------

/// A sub-domain produced by a 1-D index partition. Contiguous for blocked
/// and balanced partitions; strided for block-cyclic ones (the paper's
/// `BLOCK_CYCLIC` example produces sub-domains like `{0,1,2, 6,7,8}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexSubDomain {
    Contiguous(Range1d),
    /// Indices `first + q*stride + r` for `q = 0, 1, ...` and `r in
    /// [0, block)`, restricted to `< global_hi`.
    BlockCyclic { first: usize, block: usize, stride: usize, global_hi: usize },
}

impl IndexSubDomain {
    pub fn len(&self) -> usize {
        match self {
            IndexSubDomain::Contiguous(r) => r.len(),
            IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                if first >= global_hi {
                    return 0;
                }
                let span = global_hi - first;
                let full = span / stride;
                let rem = (span % stride).min(*block);
                full * block + rem
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, gid: usize) -> bool {
        match self {
            IndexSubDomain::Contiguous(r) => r.contains(&gid),
            IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                gid >= *first && gid < *global_hi && (gid - first) % stride < *block
            }
        }
    }

    /// GIDs of the sub-domain in linearization order.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            IndexSubDomain::Contiguous(r) => Box::new(r.iter()),
            IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                let (first, block, stride, hi) = (*first, *block, *stride, *global_hi);
                Box::new(
                    (0..)
                        .flat_map(move |q| (0..block).map(move |r| first + q * stride + r))
                        .take_while(move |g| *g < hi),
                )
            }
        }
    }

    /// Offset of `gid` inside the sub-domain's linearization.
    pub fn offset(&self, gid: usize) -> usize {
        debug_assert!(self.contains(gid));
        match self {
            IndexSubDomain::Contiguous(r) => gid - r.lo,
            IndexSubDomain::BlockCyclic { first, block, stride, .. } => {
                let d = gid - first;
                (d / stride) * block + d % stride
            }
        }
    }

    /// The maximal GID ranges that are contiguous both in the index space
    /// *and* in the sub-domain's linearization — the units of bulk
    /// transport: a run maps to one contiguous span of the owning base
    /// container's storage. One range for contiguous sub-domains; one per
    /// block for block-cyclic ones.
    pub fn contiguous_pieces(&self) -> Vec<Range1d> {
        match self {
            IndexSubDomain::Contiguous(r) => {
                if r.is_empty() {
                    vec![]
                } else {
                    vec![*r]
                }
            }
            IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                let mut out = Vec::new();
                let mut lo = *first;
                while lo < *global_hi {
                    out.push(Range1d::new(lo, (lo + block).min(*global_hi)));
                    lo += stride;
                }
                out
            }
        }
    }

    /// GID at offset `k` of the linearization.
    pub fn nth(&self, k: usize) -> Option<usize> {
        match self {
            IndexSubDomain::Contiguous(r) => r.iter().nth(k),
            IndexSubDomain::BlockCyclic { first, block, stride, global_hi } => {
                let g = first + (k / block) * stride + k % block;
                (g < *global_hi).then_some(g)
            }
        }
    }
}

// ---------------------------------------------------------------------
// 1-D index partitions (pArray / pVector, Table XV)
// ---------------------------------------------------------------------

/// Partition of the index domain `[0, n)` into ordered sub-domains; the
/// paper's indexed-partition concept with a closed-form `find`.
pub trait IndexPartition: 'static {
    /// Total number of indices partitioned.
    fn global_size(&self) -> usize;

    /// Number of sub-domains (== number of base containers).
    fn num_subdomains(&self) -> usize;

    /// The sub-domain assigned to `bcid`.
    fn subdomain(&self, bcid: Bcid) -> IndexSubDomain;

    /// The BCID whose sub-domain contains `gid` (the paper's `get_info`).
    fn find(&self, gid: usize) -> Bcid;

    fn clone_box(&self) -> Box<dyn IndexPartition>;

    fn subdomain_sizes(&self) -> Vec<usize> {
        (0..self.num_subdomains()).map(|b| self.subdomain(b).len()).collect()
    }
}

impl Clone for Box<dyn IndexPartition> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// `partition_balanced`: `p` sub-domains of size `n/p` (the first `n mod p`
/// get one extra), pArray's default.
#[derive(Clone, Copy, Debug)]
pub struct BalancedPartition {
    n: usize,
    p: usize,
}

impl BalancedPartition {
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1);
        // If n < p the paper creates n sub-domains of size 1.
        let p = if n == 0 { 1 } else { p.min(n) };
        BalancedPartition { n, p }
    }

    fn bounds(&self, b: Bcid) -> (usize, usize) {
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let lo = b * base + b.min(extra);
        let hi = lo + base + usize::from(b < extra);
        (lo, hi)
    }
}

impl IndexPartition for BalancedPartition {
    fn global_size(&self) -> usize {
        self.n
    }

    fn num_subdomains(&self) -> usize {
        self.p
    }

    fn subdomain(&self, bcid: Bcid) -> IndexSubDomain {
        let (lo, hi) = self.bounds(bcid);
        IndexSubDomain::Contiguous(Range1d::new(lo, hi))
    }

    fn find(&self, gid: usize) -> Bcid {
        debug_assert!(gid < self.n);
        let base = self.n / self.p;
        let extra = self.n % self.p;
        let big = extra * (base + 1);
        if gid < big {
            gid / (base + 1)
        } else {
            extra + (gid - big) / base.max(1)
        }
    }

    fn clone_box(&self) -> Box<dyn IndexPartition> {
        Box::new(*self)
    }
}

/// `partition_blocked`: fixed block size; `ceil(n / block)` sub-domains,
/// the last possibly smaller.
#[derive(Clone, Copy, Debug)]
pub struct BlockedPartition {
    n: usize,
    block: usize,
}

impl BlockedPartition {
    pub fn new(n: usize, block: usize) -> Self {
        assert!(block >= 1);
        BlockedPartition { n, block }
    }
}

impl IndexPartition for BlockedPartition {
    fn global_size(&self) -> usize {
        self.n
    }

    fn num_subdomains(&self) -> usize {
        if self.n == 0 {
            1
        } else {
            self.n.div_ceil(self.block)
        }
    }

    fn subdomain(&self, bcid: Bcid) -> IndexSubDomain {
        let lo = (bcid * self.block).min(self.n);
        let hi = (lo + self.block).min(self.n);
        IndexSubDomain::Contiguous(Range1d::new(lo, hi))
    }

    fn find(&self, gid: usize) -> Bcid {
        debug_assert!(gid < self.n);
        gid / self.block
    }

    fn clone_box(&self) -> Box<dyn IndexPartition> {
        Box::new(*self)
    }
}

/// `partition_block_cyclic(domain, p, BLOCK_CYCLIC(b))`: groups of `b`
/// consecutive indices dealt cyclically to `p` sub-domains.
#[derive(Clone, Copy, Debug)]
pub struct BlockCyclicPartition {
    n: usize,
    p: usize,
    block: usize,
}

impl BlockCyclicPartition {
    pub fn new(n: usize, p: usize, block: usize) -> Self {
        assert!(p >= 1 && block >= 1);
        BlockCyclicPartition { n, p, block }
    }
}

impl IndexPartition for BlockCyclicPartition {
    fn global_size(&self) -> usize {
        self.n
    }

    fn num_subdomains(&self) -> usize {
        self.p
    }

    fn subdomain(&self, bcid: Bcid) -> IndexSubDomain {
        IndexSubDomain::BlockCyclic {
            first: bcid * self.block,
            block: self.block,
            stride: self.p * self.block,
            global_hi: self.n,
        }
    }

    fn find(&self, gid: usize) -> Bcid {
        debug_assert!(gid < self.n);
        (gid / self.block) % self.p
    }

    fn clone_box(&self) -> Box<dyn IndexPartition> {
        Box::new(*self)
    }
}

/// `partition_blocked_explicit`: arbitrary consecutive block sizes, e.g.
/// `BLOCK(v{3,4,4})`. Also the shape taken by pVector's partition after
/// unbalanced inserts.
#[derive(Clone, Debug)]
pub struct ExplicitPartition {
    /// Cumulative upper bounds; sub-domain `i` is
    /// `[bounds[i-1], bounds[i])` with `bounds[-1] == 0`.
    bounds: Vec<usize>,
}

impl ExplicitPartition {
    pub fn from_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty());
        let mut bounds = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for s in sizes {
            acc += s;
            bounds.push(acc);
        }
        ExplicitPartition { bounds }
    }

    pub fn sizes(&self) -> Vec<usize> {
        let mut prev = 0;
        self.bounds
            .iter()
            .map(|&b| {
                let s = b - prev;
                prev = b;
                s
            })
            .collect()
    }
}

impl IndexPartition for ExplicitPartition {
    fn global_size(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    fn num_subdomains(&self) -> usize {
        self.bounds.len()
    }

    fn subdomain(&self, bcid: Bcid) -> IndexSubDomain {
        let lo = if bcid == 0 { 0 } else { self.bounds[bcid - 1] };
        IndexSubDomain::Contiguous(Range1d::new(lo, self.bounds[bcid]))
    }

    fn find(&self, gid: usize) -> Bcid {
        debug_assert!(gid < self.global_size());
        self.bounds.partition_point(|&b| b <= gid)
    }

    fn clone_box(&self) -> Box<dyn IndexPartition> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// 2-D matrix partition (pMatrix)
// ---------------------------------------------------------------------

/// How a matrix index space is cut into blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixLayout {
    /// Horizontal stripes of rows.
    RowBlocked,
    /// Vertical stripes of columns.
    ColumnBlocked,
    /// `grid_rows × grid_cols` rectangular tiles.
    Blocked2d { grid_rows: usize, grid_cols: usize },
}

/// `p_matrix_partition`: blocked decompositions of a 2-D domain; BCIDs
/// enumerate the blocks row-major.
#[derive(Clone, Copy, Debug)]
pub struct MatrixPartition {
    pub nrows: usize,
    pub ncols: usize,
    pub layout: MatrixLayout,
    pub nparts: usize,
}

impl MatrixPartition {
    pub fn new(nrows: usize, ncols: usize, layout: MatrixLayout, nparts: usize) -> Self {
        assert!(nparts >= 1);
        if let MatrixLayout::Blocked2d { grid_rows, grid_cols } = layout {
            assert_eq!(grid_rows * grid_cols, nparts, "grid must have nparts tiles");
        }
        MatrixPartition { nrows, ncols, layout, nparts }
    }

    fn stripe(total: usize, parts: usize, i: usize) -> Range1d {
        let base = total / parts;
        let extra = total % parts;
        let lo = i * base + i.min(extra);
        let hi = lo + base + usize::from(i < extra);
        Range1d::new(lo, hi)
    }

    fn stripe_of(total: usize, parts: usize, x: usize) -> usize {
        let base = total / parts;
        let extra = total % parts;
        let big = extra * (base + 1);
        if x < big {
            x / (base + 1)
        } else {
            extra + (x - big) / base.max(1)
        }
    }

    pub fn num_subdomains(&self) -> usize {
        self.nparts
    }

    /// The rectangular block assigned to `bcid`.
    pub fn block(&self, bcid: Bcid) -> crate::domain::Range2d {
        match self.layout {
            MatrixLayout::RowBlocked => crate::domain::Range2d::new(
                Self::stripe(self.nrows, self.nparts, bcid),
                Range1d::with_size(self.ncols),
            ),
            MatrixLayout::ColumnBlocked => crate::domain::Range2d::new(
                Range1d::with_size(self.nrows),
                Self::stripe(self.ncols, self.nparts, bcid),
            ),
            MatrixLayout::Blocked2d { grid_rows, grid_cols } => {
                let br = bcid / grid_cols;
                let bc = bcid % grid_cols;
                crate::domain::Range2d::new(
                    Self::stripe(self.nrows, grid_rows, br),
                    Self::stripe(self.ncols, grid_cols, bc),
                )
            }
        }
    }

    /// BCID of the block containing `(row, col)`.
    pub fn find(&self, g: (usize, usize)) -> Bcid {
        match self.layout {
            MatrixLayout::RowBlocked => Self::stripe_of(self.nrows, self.nparts, g.0),
            MatrixLayout::ColumnBlocked => Self::stripe_of(self.ncols, self.nparts, g.1),
            MatrixLayout::Blocked2d { grid_rows, grid_cols } => {
                let br = Self::stripe_of(self.nrows, grid_rows, g.0);
                let bc = Self::stripe_of(self.ncols, grid_cols, g.1);
                br * grid_cols + bc
            }
        }
    }
}

// ---------------------------------------------------------------------
// Key partitions (associative pContainers, Ch. XII)
// ---------------------------------------------------------------------

/// Maps keys to BCIDs for associative containers.
pub trait KeyPartition<K>: 'static {
    fn num_subdomains(&self) -> usize;
    fn find(&self, k: &K) -> Bcid;
    fn clone_box(&self) -> Box<dyn KeyPartition<K>>;
}

impl<K: 'static> Clone for Box<dyn KeyPartition<K>> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Value-based partition for *sorted* associative containers (Fig. 58):
/// `s` splitter keys define `s + 1` ordered key intervals, preserving the
/// global key order across sub-domains.
#[derive(Clone, Debug)]
pub struct SplitterPartition<K> {
    splitters: Vec<K>,
}

impl<K: Ord + Clone + 'static> SplitterPartition<K> {
    pub fn new(mut splitters: Vec<K>) -> Self {
        splitters.sort();
        SplitterPartition { splitters }
    }

    pub fn splitters(&self) -> &[K] {
        &self.splitters
    }
}

impl<K: Ord + Clone + 'static> KeyPartition<K> for SplitterPartition<K> {
    fn num_subdomains(&self) -> usize {
        self.splitters.len() + 1
    }

    fn find(&self, k: &K) -> Bcid {
        self.splitters.partition_point(|s| s <= k)
    }

    fn clone_box(&self) -> Box<dyn KeyPartition<K>> {
        Box::new(self.clone())
    }
}

/// Hash partition for *hashed* associative containers: bucket =
/// `hash(key) mod buckets`. Does not preserve key order.
#[derive(Clone, Copy, Debug)]
pub struct HashPartition {
    buckets: usize,
}

impl HashPartition {
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 1);
        HashPartition { buckets }
    }
}

impl<K: Hash + 'static> KeyPartition<K> for HashPartition {
    fn num_subdomains(&self) -> usize {
        self.buckets
    }

    fn find(&self, k: &K) -> Bcid {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        (h.finish() as usize) % self.buckets
    }

    fn clone_box(&self) -> Box<dyn KeyPartition<K>> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(p: &dyn IndexPartition) {
        // Sub-domains are disjoint and cover [0, n) — Definition 9.
        let n = p.global_size();
        let mut seen = vec![0u32; n];
        for b in 0..p.num_subdomains() {
            for g in p.subdomain(b).iter() {
                seen[g] += 1;
                assert_eq!(p.find(g), b, "find({g}) disagrees with subdomain({b})");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
    }

    #[test]
    fn balanced_partition_covers_and_balances() {
        let p = BalancedPartition::new(10, 4);
        check_cover(&p);
        let sizes = p.subdomain_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn balanced_with_fewer_elements_than_parts() {
        let p = BalancedPartition::new(3, 8);
        assert_eq!(p.num_subdomains(), 3);
        check_cover(&p);
        assert!(p.subdomain_sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn blocked_partition_example_from_paper() {
        // partition_blocked([0..11), 3) -> {0..2, 3..5, 6..8, 9..10}
        let p = BlockedPartition::new(11, 3);
        assert_eq!(p.num_subdomains(), 4);
        check_cover(&p);
        assert_eq!(p.subdomain_sizes(), vec![3, 3, 3, 2]);
        assert_eq!(p.find(9), 3);
    }

    #[test]
    fn block_cyclic_matches_paper_example() {
        // partition_block_cyclic([0..11), 2, BLOCK_CYCLIC(3))
        //   -> { {0,1,2, 6,7,8}, {3,4,5, 9,10} }
        let p = BlockCyclicPartition::new(11, 2, 3);
        check_cover(&p);
        assert_eq!(
            p.subdomain(0).iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 6, 7, 8]
        );
        assert_eq!(
            p.subdomain(1).iter().collect::<Vec<_>>(),
            vec![3, 4, 5, 9, 10]
        );
    }

    #[test]
    fn block_cyclic_block_one_is_cyclic() {
        // partition_block_cyclic([0..11), 2, BLOCK_CYCLIC(1))
        //   -> { {0,2,4,6,8,10}, {1,3,5,7,9} }
        let p = BlockCyclicPartition::new(11, 2, 1);
        check_cover(&p);
        assert_eq!(
            p.subdomain(0).iter().collect::<Vec<_>>(),
            vec![0, 2, 4, 6, 8, 10]
        );
    }

    #[test]
    fn contiguous_pieces_cover_in_order() {
        let p = BlockCyclicPartition::new(23, 3, 4);
        for b in 0..3 {
            let sd = p.subdomain(b);
            let pieces = sd.contiguous_pieces();
            let flat: Vec<usize> = pieces.iter().flat_map(|r| r.iter()).collect();
            assert_eq!(flat, sd.iter().collect::<Vec<_>>());
            // Every piece is storage-contiguous: offsets advance by one.
            for piece in &pieces {
                let base = sd.offset(piece.lo);
                for (k, g) in piece.iter().enumerate() {
                    assert_eq!(sd.offset(g), base + k);
                }
            }
        }
        let c = IndexSubDomain::Contiguous(Range1d::new(5, 9));
        assert_eq!(c.contiguous_pieces(), vec![Range1d::new(5, 9)]);
        let e = IndexSubDomain::Contiguous(Range1d::new(4, 4));
        assert!(e.contiguous_pieces().is_empty());
    }

    #[test]
    fn block_cyclic_subdomain_offsets_roundtrip() {
        let p = BlockCyclicPartition::new(23, 3, 4);
        for b in 0..3 {
            let sd = p.subdomain(b);
            for (k, g) in sd.iter().enumerate() {
                assert_eq!(sd.offset(g), k);
                assert_eq!(sd.nth(k), Some(g));
            }
            assert_eq!(sd.len(), sd.iter().count());
        }
    }

    #[test]
    fn explicit_partition_example_from_paper() {
        // partition_blocked_explicit(BLOCK(v{3,4,4})) -> {0..2, 3..6, 7..10}
        let p = ExplicitPartition::from_sizes(&[3, 4, 4]);
        check_cover(&p);
        assert_eq!(p.find(0), 0);
        assert_eq!(p.find(3), 1);
        assert_eq!(p.find(6), 1);
        assert_eq!(p.find(7), 2);
        assert_eq!(p.sizes(), vec![3, 4, 4]);
    }

    #[test]
    fn ordered_partition_preserves_order() {
        // Definition 10: contiguous ordered partitions preserve the global
        // order: every gid in sub-domain i precedes every gid in i+1.
        let p = BalancedPartition::new(37, 5);
        let mut prev_max: Option<usize> = None;
        for b in 0..p.num_subdomains() {
            let gids: Vec<_> = p.subdomain(b).iter().collect();
            if let (Some(pm), Some(first)) = (prev_max, gids.first()) {
                assert!(pm < *first);
            }
            prev_max = gids.last().copied().or(prev_max);
        }
    }

    #[test]
    fn matrix_row_blocked() {
        let p = MatrixPartition::new(6, 4, MatrixLayout::RowBlocked, 3);
        assert_eq!(p.block(0).nrows(), 2);
        assert_eq!(p.find((0, 3)), 0);
        assert_eq!(p.find((2, 0)), 1);
        assert_eq!(p.find((5, 3)), 2);
    }

    #[test]
    fn matrix_column_blocked() {
        let p = MatrixPartition::new(4, 6, MatrixLayout::ColumnBlocked, 2);
        assert_eq!(p.find((3, 2)), 0);
        assert_eq!(p.find((0, 3)), 1);
        assert_eq!(p.block(1).ncols(), 3);
    }

    #[test]
    fn matrix_blocked_2d_tiles_cover() {
        let p = MatrixPartition::new(6, 6, MatrixLayout::Blocked2d { grid_rows: 2, grid_cols: 3 }, 6);
        let mut count = 0;
        for b in 0..p.num_subdomains() {
            let blk = p.block(b);
            for r in blk.rows.iter() {
                for c in blk.cols.iter() {
                    assert_eq!(p.find((r, c)), b);
                    count += 1;
                }
            }
        }
        assert_eq!(count, 36);
    }

    #[test]
    fn splitter_partition_orders_keys() {
        let p = SplitterPartition::new(vec![10, 20, 30]);
        assert_eq!(p.num_subdomains(), 4);
        assert_eq!(p.find(&5), 0);
        assert_eq!(p.find(&10), 1);
        assert_eq!(p.find(&19), 1);
        assert_eq!(p.find(&25), 2);
        assert_eq!(p.find(&99), 3);
        // Order preservation: k1 < k2 => bcid(k1) <= bcid(k2).
        for a in 0..40 {
            for b in a..40 {
                assert!(p.find(&a) <= p.find(&b));
            }
        }
    }

    #[test]
    fn hash_partition_is_stable_and_in_range() {
        let p = HashPartition::new(7);
        for k in 0..100 {
            let b = KeyPartition::<i32>::find(&p, &k);
            assert!(b < 7);
            assert_eq!(b, KeyPartition::<i32>::find(&p, &k));
        }
    }
}
