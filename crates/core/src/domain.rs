//! Domains: sets of GIDs with optional order (Chapter IV.B.2–3 and the
//! interfaces of Tables V and VI).
//!
//! A *domain* is the set of GIDs identifying a container's elements. An
//! *ordered domain* adds a total order; a *finite ordered domain* adds
//! cardinality, `next`/`prev`/`advance`/`offset`, and a unique enumeration
//! (the linearization used for traversals).

use std::collections::HashMap;

use crate::gid::Gid;

/// A set of GIDs (Table V's membership subset).
pub trait Domain {
    type Gid: Gid;

    /// `contains_gid` of the paper.
    fn contains(&self, g: &Self::Gid) -> bool;
}

/// A domain with a total order among its GIDs (Table V).
pub trait OrderedDomain: Domain {
    /// `compare_less_gids`: true when `a` precedes `b` in the order.
    fn less(&self, a: &Self::Gid, b: &Self::Gid) -> bool;
}

/// A finite, totally ordered domain (Table VI).
pub trait FiniteDomain: OrderedDomain {
    /// Cardinality of the domain.
    fn size(&self) -> usize;

    /// First GID of the linearization; `None` for an empty domain.
    fn first(&self) -> Option<Self::Gid>;

    /// Last *valid* GID; `None` for an empty domain. (The paper represents
    /// one-past-the-end by a conventional sentinel; an `Option` plays that
    /// role idiomatically.)
    fn last(&self) -> Option<Self::Gid>;

    /// GID following `g`; `None` when `g` is the last.
    fn next(&self, g: Self::Gid) -> Option<Self::Gid>;

    /// GID preceding `g`; `None` when `g` is the first.
    fn prev(&self, g: Self::Gid) -> Option<Self::Gid>;

    /// `advance(g, n)`: the n-th GID after `g`.
    fn advance(&self, g: Self::Gid, n: usize) -> Option<Self::Gid> {
        let mut cur = g;
        for _ in 0..n {
            cur = self.next(cur)?;
        }
        Some(cur)
    }

    /// Position of `g` in the linearization.
    fn offset(&self, g: &Self::Gid) -> usize;

    /// n-th GID of the linearization.
    fn nth(&self, n: usize) -> Option<Self::Gid> {
        self.first().and_then(|f| if n == 0 { Some(f) } else { self.advance(f, n) })
    }

    fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// The unique enumeration imposed by the order (Definition 6.5).
    /// Intended for tests and small domains; hot paths iterate concrete
    /// types directly.
    fn enumerate(&self) -> Vec<Self::Gid> {
        let mut out = Vec::with_capacity(self.size());
        let mut cur = self.first();
        while let Some(g) = cur {
            out.push(g);
            cur = self.next(g);
        }
        out
    }
}

// ---------------------------------------------------------------------
// 1-D index range — the workhorse domain of pArray/pVector
// ---------------------------------------------------------------------

/// Half-open index range `[lo, hi)` under the natural order of `usize`;
/// the paper's `1DRange`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Range1d {
    pub lo: usize,
    pub hi: usize,
}

impl Range1d {
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi})");
        Range1d { lo, hi }
    }

    /// `[0, n)`.
    pub fn with_size(n: usize) -> Self {
        Range1d { lo: 0, hi: n }
    }

    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    pub fn iter(&self) -> std::ops::Range<usize> {
        self.lo..self.hi
    }

    /// Set intersection with another range.
    pub fn intersect(&self, other: &Range1d) -> Range1d {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi).max(lo);
        Range1d { lo, hi }
    }
}

impl Domain for Range1d {
    type Gid = usize;

    fn contains(&self, g: &usize) -> bool {
        *g >= self.lo && *g < self.hi
    }
}

impl OrderedDomain for Range1d {
    fn less(&self, a: &usize, b: &usize) -> bool {
        a < b
    }
}

impl FiniteDomain for Range1d {
    fn size(&self) -> usize {
        self.len()
    }

    fn first(&self) -> Option<usize> {
        (!self.is_empty()).then_some(self.lo)
    }

    fn last(&self) -> Option<usize> {
        (!self.is_empty()).then(|| self.hi - 1)
    }

    fn next(&self, g: usize) -> Option<usize> {
        (g + 1 < self.hi).then_some(g + 1)
    }

    fn prev(&self, g: usize) -> Option<usize> {
        (g > self.lo).then(|| g - 1)
    }

    fn advance(&self, g: usize, n: usize) -> Option<usize> {
        let t = g + n;
        (t < self.hi).then_some(t)
    }

    fn offset(&self, g: &usize) -> usize {
        debug_assert!(self.contains(g));
        g - self.lo
    }

    fn nth(&self, n: usize) -> Option<usize> {
        let t = self.lo + n;
        (t < self.hi).then_some(t)
    }
}

// ---------------------------------------------------------------------
// 2-D range — pMatrix domain (row-major linearization)
// ---------------------------------------------------------------------

/// Rectangular sub-domain `[row_lo, row_hi) × [col_lo, col_hi)` of a matrix
/// index space, ordered row-wise (the paper's `2DRange row`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Range2d {
    pub rows: Range1d,
    pub cols: Range1d,
}

impl Range2d {
    pub fn new(rows: Range1d, cols: Range1d) -> Self {
        Range2d { rows, cols }
    }

    pub fn with_shape(nrows: usize, ncols: usize) -> Self {
        Range2d { rows: Range1d::with_size(nrows), cols: Range1d::with_size(ncols) }
    }

    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    pub fn ncols(&self) -> usize {
        self.cols.len()
    }
}

impl Domain for Range2d {
    type Gid = (usize, usize);

    fn contains(&self, g: &(usize, usize)) -> bool {
        self.rows.contains(&g.0) && self.cols.contains(&g.1)
    }
}

impl OrderedDomain for Range2d {
    fn less(&self, a: &(usize, usize), b: &(usize, usize)) -> bool {
        a < b // lexicographic = row-major
    }
}

impl FiniteDomain for Range2d {
    fn size(&self) -> usize {
        self.nrows() * self.ncols()
    }

    fn first(&self) -> Option<(usize, usize)> {
        (!self.rows.is_empty() && !self.cols.is_empty()).then_some((self.rows.lo, self.cols.lo))
    }

    fn last(&self) -> Option<(usize, usize)> {
        (!self.rows.is_empty() && !self.cols.is_empty())
            .then(|| (self.rows.hi - 1, self.cols.hi - 1))
    }

    fn next(&self, g: (usize, usize)) -> Option<(usize, usize)> {
        if g.1 + 1 < self.cols.hi {
            Some((g.0, g.1 + 1))
        } else if g.0 + 1 < self.rows.hi {
            Some((g.0 + 1, self.cols.lo))
        } else {
            None
        }
    }

    fn prev(&self, g: (usize, usize)) -> Option<(usize, usize)> {
        if g.1 > self.cols.lo {
            Some((g.0, g.1 - 1))
        } else if g.0 > self.rows.lo {
            Some((g.0 - 1, self.cols.hi - 1))
        } else {
            None
        }
    }

    fn offset(&self, g: &(usize, usize)) -> usize {
        debug_assert!(self.contains(g));
        (g.0 - self.rows.lo) * self.ncols() + (g.1 - self.cols.lo)
    }

    fn nth(&self, n: usize) -> Option<(usize, usize)> {
        if n >= self.size() {
            return None;
        }
        Some((self.rows.lo + n / self.ncols(), self.cols.lo + n % self.ncols()))
    }

    fn advance(&self, g: (usize, usize), n: usize) -> Option<(usize, usize)> {
        self.nth(self.offset(&g) + n)
    }
}

// ---------------------------------------------------------------------
// Enumerated domain — explicit GID list (paper's "enumeration")
// ---------------------------------------------------------------------

/// A domain given by an explicit list of distinct GIDs; the order is the
/// specification order (the paper's default for enumerations).
#[derive(Clone, Debug)]
pub struct EnumeratedDomain<G: Gid> {
    gids: Vec<G>,
    index: HashMap<G, usize>,
}

impl<G: Gid> EnumeratedDomain<G> {
    pub fn new(gids: Vec<G>) -> Self {
        let index: HashMap<G, usize> = gids.iter().enumerate().map(|(i, g)| (*g, i)).collect();
        assert_eq!(index.len(), gids.len(), "enumerated domain GIDs must be distinct");
        EnumeratedDomain { gids, index }
    }

    pub fn gids(&self) -> &[G] {
        &self.gids
    }
}

impl<G: Gid> Domain for EnumeratedDomain<G> {
    type Gid = G;

    fn contains(&self, g: &G) -> bool {
        self.index.contains_key(g)
    }
}

impl<G: Gid> OrderedDomain for EnumeratedDomain<G> {
    fn less(&self, a: &G, b: &G) -> bool {
        self.index[a] < self.index[b]
    }
}

impl<G: Gid> FiniteDomain for EnumeratedDomain<G> {
    fn size(&self) -> usize {
        self.gids.len()
    }

    fn first(&self) -> Option<G> {
        self.gids.first().copied()
    }

    fn last(&self) -> Option<G> {
        self.gids.last().copied()
    }

    fn next(&self, g: G) -> Option<G> {
        self.gids.get(self.index[&g] + 1).copied()
    }

    fn prev(&self, g: G) -> Option<G> {
        let i = self.index[&g];
        if i == 0 {
            None
        } else {
            Some(self.gids[i - 1])
        }
    }

    fn offset(&self, g: &G) -> usize {
        self.index[g]
    }

    fn nth(&self, n: usize) -> Option<G> {
        self.gids.get(n).copied()
    }
}

// ---------------------------------------------------------------------
// Key domain — the (possibly infinite) ordered domain of associative
// containers, `[lo, hi)` under `Ord`
// ---------------------------------------------------------------------

/// Ordered key interval for associative containers (the paper's "open
/// ordered domains"): membership is a range check, cardinality may be
/// unbounded. Not a [`FiniteDomain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyDomain<K> {
    pub lo: Option<K>,
    pub hi: Option<K>,
}

impl<K: Ord + Clone> KeyDomain<K> {
    /// The whole key universe.
    pub fn all() -> Self {
        KeyDomain { lo: None, hi: None }
    }

    /// `[lo, hi)`.
    pub fn interval(lo: K, hi: K) -> Self {
        KeyDomain { lo: Some(lo), hi: Some(hi) }
    }

    pub fn contains(&self, k: &K) -> bool {
        if let Some(lo) = &self.lo {
            if k < lo {
                return false;
            }
        }
        if let Some(hi) = &self.hi {
            if k >= hi {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------
// Filtered domain
// ---------------------------------------------------------------------

/// A domain restricted by a predicate, e.g. "every second element"
/// (paper's filtered domain). Linearization order is inherited.
///
/// [`FiniteDomain::offset`] memoizes the last `(gid, offset)` it resolved
/// and resumes the walk from there when the queried GID is not before it,
/// so traversal-order offset queries — the common case in loops — cost
/// O(n) in total instead of O(n²).
#[derive(Clone)]
pub struct FilteredDomain<D: Domain, F> {
    pub base: D,
    pub filter: F,
    cursor: std::cell::Cell<Option<(D::Gid, usize)>>,
}

impl<D: FiniteDomain, F: Fn(&D::Gid) -> bool> FilteredDomain<D, F> {
    pub fn new(base: D, filter: F) -> Self {
        FilteredDomain { base, filter, cursor: std::cell::Cell::new(None) }
    }
}

impl<D: FiniteDomain, F: Fn(&D::Gid) -> bool> Domain for FilteredDomain<D, F> {
    type Gid = D::Gid;

    fn contains(&self, g: &Self::Gid) -> bool {
        self.base.contains(g) && (self.filter)(g)
    }
}

impl<D: FiniteDomain, F: Fn(&D::Gid) -> bool> OrderedDomain for FilteredDomain<D, F> {
    fn less(&self, a: &Self::Gid, b: &Self::Gid) -> bool {
        self.base.less(a, b)
    }
}

impl<D: FiniteDomain, F: Fn(&D::Gid) -> bool> FiniteDomain for FilteredDomain<D, F> {
    fn size(&self) -> usize {
        self.base.enumerate().iter().filter(|g| (self.filter)(g)).count()
    }

    fn first(&self) -> Option<Self::Gid> {
        let mut cur = self.base.first();
        while let Some(g) = cur {
            if (self.filter)(&g) {
                return Some(g);
            }
            cur = self.base.next(g);
        }
        None
    }

    fn last(&self) -> Option<Self::Gid> {
        let mut cur = self.base.last();
        while let Some(g) = cur {
            if (self.filter)(&g) {
                return Some(g);
            }
            cur = self.base.prev(g);
        }
        None
    }

    fn next(&self, g: Self::Gid) -> Option<Self::Gid> {
        let mut cur = self.base.next(g);
        while let Some(x) = cur {
            if (self.filter)(&x) {
                return Some(x);
            }
            cur = self.base.next(x);
        }
        None
    }

    fn prev(&self, g: Self::Gid) -> Option<Self::Gid> {
        let mut cur = self.base.prev(g);
        while let Some(x) = cur {
            if (self.filter)(&x) {
                return Some(x);
            }
            cur = self.base.prev(x);
        }
        None
    }

    fn offset(&self, g: &Self::Gid) -> usize {
        // Fast reject: a GID outside the domain would otherwise cost a
        // full O(n) walk before panicking.
        if !self.contains(g) {
            self.not_in_domain(g);
        }
        // Resume from the memoized cursor when `g` is at or after it;
        // restart from the front for backward queries.
        let (mut cur, mut n) = match self.cursor.get() {
            Some((cg, cn)) if cg == *g => return cn,
            Some((cg, cn)) if self.base.less(&cg, g) => (Some(cg), cn),
            _ => (self.first(), 0),
        };
        while let Some(x) = cur {
            if x == *g {
                self.cursor.set(Some((x, n)));
                return n;
            }
            n += 1;
            cur = self.next(x);
        }
        self.not_in_domain(g);
    }
}

impl<D: FiniteDomain, F: Fn(&D::Gid) -> bool> FilteredDomain<D, F> {
    fn not_in_domain(&self, g: &D::Gid) -> ! {
        panic!(
            "gid {g:?} is not in the filtered domain (base holds {} gids, {} pass the filter; \
             filtered range {:?}..={:?})",
            self.base.size(),
            self.size(),
            self.first(),
            self.last()
        );
    }
}

// ---------------------------------------------------------------------
// Composed domain — cross product (Definition 12 / Eq. 4.2)
// ---------------------------------------------------------------------

/// The domain of a composed pContainer: the union of cross products of the
/// outer domain with each element's inner domain (Eq. 4.2). GIDs are
/// `(outer, inner)` pairs ordered lexicographically.
#[derive(Clone, Debug)]
pub struct ComposedDomain<Do: FiniteDomain, Di: FiniteDomain> {
    pub outer: Do,
    /// Inner domain per outer GID, in outer linearization order.
    pub inners: Vec<Di>,
}

impl<Do: FiniteDomain, Di: FiniteDomain> ComposedDomain<Do, Di> {
    pub fn new(outer: Do, inners: Vec<Di>) -> Self {
        assert_eq!(outer.size(), inners.len());
        ComposedDomain { outer, inners }
    }

    fn inner_of(&self, o: &Do::Gid) -> &Di {
        &self.inners[self.outer.offset(o)]
    }
}

impl<Do: FiniteDomain, Di: FiniteDomain> Domain for ComposedDomain<Do, Di> {
    type Gid = (Do::Gid, Di::Gid);

    fn contains(&self, g: &Self::Gid) -> bool {
        self.outer.contains(&g.0) && self.inner_of(&g.0).contains(&g.1)
    }
}

impl<Do: FiniteDomain, Di: FiniteDomain> OrderedDomain for ComposedDomain<Do, Di> {
    fn less(&self, a: &Self::Gid, b: &Self::Gid) -> bool {
        if a.0 == b.0 {
            self.inner_of(&a.0).less(&a.1, &b.1)
        } else {
            self.outer.less(&a.0, &b.0)
        }
    }
}

impl<Do: FiniteDomain, Di: FiniteDomain> FiniteDomain for ComposedDomain<Do, Di> {
    fn size(&self) -> usize {
        self.inners.iter().map(|d| d.size()).sum()
    }

    fn first(&self) -> Option<Self::Gid> {
        let mut o = self.outer.first();
        while let Some(og) = o {
            if let Some(ig) = self.inner_of(&og).first() {
                return Some((og, ig));
            }
            o = self.outer.next(og);
        }
        None
    }

    fn last(&self) -> Option<Self::Gid> {
        let mut o = self.outer.last();
        while let Some(og) = o {
            if let Some(ig) = self.inner_of(&og).last() {
                return Some((og, ig));
            }
            o = self.outer.prev(og);
        }
        None
    }

    fn next(&self, g: Self::Gid) -> Option<Self::Gid> {
        if let Some(ig) = self.inner_of(&g.0).next(g.1) {
            return Some((g.0, ig));
        }
        let mut o = self.outer.next(g.0);
        while let Some(og) = o {
            if let Some(ig) = self.inner_of(&og).first() {
                return Some((og, ig));
            }
            o = self.outer.next(og);
        }
        None
    }

    fn prev(&self, g: Self::Gid) -> Option<Self::Gid> {
        if let Some(ig) = self.inner_of(&g.0).prev(g.1) {
            return Some((g.0, ig));
        }
        let mut o = self.outer.prev(g.0);
        while let Some(og) = o {
            if let Some(ig) = self.inner_of(&og).last() {
                return Some((og, ig));
            }
            o = self.outer.prev(og);
        }
        None
    }

    fn offset(&self, g: &Self::Gid) -> usize {
        let oi = self.outer.offset(&g.0);
        let before: usize = self.inners[..oi].iter().map(|d| d.size()).sum();
        before + self.inner_of(&g.0).offset(&g.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range1d_basics() {
        let d = Range1d::new(5, 12);
        assert_eq!(d.size(), 7);
        assert_eq!(d.first(), Some(5));
        assert_eq!(d.last(), Some(11));
        assert!(d.contains(&5) && d.contains(&11) && !d.contains(&12) && !d.contains(&4));
        assert_eq!(d.next(11), None);
        assert_eq!(d.prev(5), None);
        assert_eq!(d.advance(5, 6), Some(11));
        assert_eq!(d.advance(5, 7), None);
        assert_eq!(d.offset(&9), 4);
        assert_eq!(d.nth(4), Some(9));
    }

    #[test]
    fn range1d_empty() {
        let d = Range1d::new(3, 3);
        assert!(d.is_empty());
        assert_eq!(d.first(), None);
        assert_eq!(d.last(), None);
        assert_eq!(d.enumerate(), Vec::<usize>::new());
    }

    #[test]
    fn range1d_enumeration_is_linear() {
        let d = Range1d::new(2, 6);
        assert_eq!(d.enumerate(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn range1d_intersect() {
        let a = Range1d::new(0, 10);
        let b = Range1d::new(5, 20);
        assert_eq!(a.intersect(&b), Range1d::new(5, 10));
        let c = Range1d::new(12, 15);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn range2d_row_major_enumeration() {
        let d = Range2d::with_shape(2, 3);
        assert_eq!(
            d.enumerate(),
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        );
        assert_eq!(d.offset(&(1, 1)), 4);
        assert_eq!(d.nth(4), Some((1, 1)));
        assert_eq!(d.size(), 6);
    }

    #[test]
    fn range2d_submatrix() {
        let d = Range2d::new(Range1d::new(1, 3), Range1d::new(2, 4));
        assert!(d.contains(&(1, 2)) && d.contains(&(2, 3)));
        assert!(!d.contains(&(0, 2)) && !d.contains(&(1, 4)));
        assert_eq!(d.first(), Some((1, 2)));
        assert_eq!(d.last(), Some((2, 3)));
        assert_eq!(d.enumerate().len(), d.size());
    }

    #[test]
    fn enumerated_domain_keeps_specification_order() {
        let d = EnumeratedDomain::new(vec![7usize, 3, 5]);
        assert_eq!(d.first(), Some(7));
        assert_eq!(d.last(), Some(5));
        assert!(d.less(&7, &3)); // specification order, not numeric
        assert_eq!(d.enumerate(), vec![7, 3, 5]);
        assert_eq!(d.offset(&3), 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn enumerated_domain_rejects_duplicates() {
        EnumeratedDomain::new(vec![1usize, 1]);
    }

    #[test]
    fn key_domain_interval() {
        let d = KeyDomain::interval("b".to_string(), "d".to_string());
        assert!(d.contains(&"b".to_string()));
        assert!(d.contains(&"c".to_string()));
        assert!(!d.contains(&"d".to_string()));
        assert!(!d.contains(&"a".to_string()));
        let all = KeyDomain::<String>::all();
        assert!(all.contains(&"zzz".to_string()));
    }

    #[test]
    fn filtered_domain_every_second() {
        let d = FilteredDomain::new(Range1d::new(0, 10), |g: &usize| g % 2 == 0);
        assert_eq!(d.enumerate(), vec![0, 2, 4, 6, 8]);
        assert_eq!(d.size(), 5);
        assert_eq!(d.first(), Some(0));
        assert_eq!(d.last(), Some(8));
        assert_eq!(d.next(4), Some(6));
        assert_eq!(d.prev(4), Some(2));
        assert_eq!(d.offset(&6), 3);
        assert!(!d.contains(&3));
    }

    #[test]
    fn filtered_offset_agrees_with_enumeration_in_any_order() {
        let d = FilteredDomain::new(Range1d::new(0, 300), |g: &usize| g % 3 == 0);
        // Forward traversal: offsets must agree with enumeration order.
        let mut cur = d.first();
        let mut n = 0;
        while let Some(g) = cur {
            assert_eq!(d.offset(&g), n);
            n += 1;
            cur = d.next(g);
        }
        assert_eq!(n, d.size());
        // Backward and repeated queries after the cursor moved past them.
        assert_eq!(d.offset(&0), 0);
        assert_eq!(d.offset(&297), d.size() - 1);
        assert_eq!(d.offset(&150), 50);
        assert_eq!(d.offset(&0), 0);
    }

    #[test]
    fn filtered_offset_loop_is_linear_not_quadratic() {
        // Count predicate evaluations across a full traversal-order offset
        // scan: the memoizing cursor keeps the total linear in the base
        // size, where the old restart-from-first walk was quadratic.
        let calls = std::cell::Cell::new(0usize);
        let n = 2000usize;
        let d = FilteredDomain::new(Range1d::new(0, n), |g: &usize| {
            calls.set(calls.get() + 1);
            g % 2 == 0
        });
        let mut cur = d.first();
        while let Some(g) = cur {
            std::hint::black_box(d.offset(&g));
            cur = d.next(g);
        }
        // ~3n with the cursor; the quadratic walk needs ~n²/4 ≈ 1e6.
        assert!(
            calls.get() < 10 * n,
            "offset loop evaluated the filter {} times for n = {n} — quadratic walk is back",
            calls.get()
        );
    }

    #[test]
    #[should_panic(expected = "gid 3 is not in the filtered domain")]
    fn filtered_offset_panic_names_filtered_out_gid() {
        let d = FilteredDomain::new(Range1d::new(0, 10), |g: &usize| g % 2 == 0);
        d.offset(&3);
    }

    #[test]
    #[should_panic(expected = "gid 42 is not in the filtered domain (base holds 10 gids")]
    fn filtered_offset_panic_describes_the_domain() {
        let d = FilteredDomain::new(Range1d::new(0, 10), |g: &usize| g % 2 == 0);
        d.offset(&42);
    }

    #[test]
    fn composed_domain_matches_paper_example() {
        // Fig. 3: outer pArray of 3, inner sizes 2, 3, 4.
        let d = ComposedDomain::new(
            Range1d::with_size(3),
            vec![Range1d::with_size(2), Range1d::with_size(3), Range1d::with_size(4)],
        );
        assert_eq!(d.size(), 9);
        assert_eq!(
            d.enumerate(),
            vec![
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (2, 3)
            ]
        );
        assert!(d.contains(&(2, 3)));
        assert!(!d.contains(&(0, 2)));
        assert_eq!(d.offset(&(1, 2)), 4);
        assert!(d.less(&(0, 1), &(1, 0)));
    }

    #[test]
    fn composed_domain_skips_empty_inners() {
        let d = ComposedDomain::new(
            Range1d::with_size(3),
            vec![Range1d::with_size(0), Range1d::with_size(2), Range1d::with_size(0)],
        );
        assert_eq!(d.first(), Some((1, 0)));
        assert_eq!(d.last(), Some((1, 1)));
        assert_eq!(d.enumerate(), vec![(1, 0), (1, 1)]);
    }
}
